#include "core/encoder.h"

#include <algorithm>

#include "cache/snapshot.h"
#include "core/anchors.h"
#include "core/flow.h"
#include "core/matcher.h"
#include "core/wire.h"
#include "packet/tcp.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/seqcmp.h"

namespace bytecache::core {
namespace {

struct TcpInfo {
  std::uint32_t seq = 0;
  std::uint32_t end_seq = 0;  // seq + data length
  std::uint64_t flow_key = 0;
};

/// TCP data segments carry their sequence range and flow identity;
/// everything else (pure ACKs, UDP, unknown protocols) yields nullopt.
/// The single header parse per packet: everything downstream (policy
/// context, cache meta) reads from this struct.
std::optional<TcpInfo> data_tcp_info(const packet::Packet& pkt) {
  if (pkt.proto() != packet::IpProto::kTcp) return std::nullopt;
  auto h = packet::TcpHeader::parse_unchecked(pkt.payload);
  if (!h) return std::nullopt;
  if (pkt.payload.size() <= packet::TcpHeader::kSize) return std::nullopt;
  TcpInfo info;
  info.seq = h->seq;
  info.end_seq = h->seq + static_cast<std::uint32_t>(
                              pkt.payload.size() - packet::TcpHeader::kSize);
  info.flow_key = flow_key_of(pkt.ip.src, pkt.ip.dst, h->src_port,
                              h->dst_port);
  return info;
}

}  // namespace

Encoder::Encoder(const DreParams& params,
                 std::unique_ptr<EncodingPolicy> policy,
                 const cache::CacheConfig& cache, cache::L2Store* l2)
    : params_(params),
      tables_(params.window, params.poly),
      policy_(std::move(policy)),
      cache_(cache, l2),
      repair_enc_(params.repair) {}

std::span<const util::Bytes> Encoder::close_repair_generation() {
  repair_enc_.begin_packet();
  repair_enc_.close_generation();
  return repair_enc_.emitted();
}

void Encoder::flush() {
  cache_.flush();
  ++epoch_;
  epoch_bumped_ = true;
}

void Encoder::flush_counted() {
  flush();
  ++stats_.flushes;
}

void Encoder::set_policy(std::unique_ptr<EncodingPolicy> policy) {
  BC_CHECK(policy != nullptr) << "set_policy(nullptr): a running encoder "
                                 "cannot switch to no policy";
  // Flush before swapping: references the old policy admitted must not
  // straddle the rule change (and the epoch bump tells v2 decoders).
  flush();
  ++stats_.flushes;
  policy_ = std::move(policy);
}

void Encoder::audit() const {
  if (!util::kAuditEnabled) return;
  cache_.audit();
  for (const cache::CachedPacket& p : cache_.store().entries()) {
    BC_AUDIT(p.meta.stream_index < stream_index_)
        << "stored packet id " << p.id << " has stream index "
        << p.meta.stream_index << " but the encoder is only at "
        << stream_index_;
  }
  BC_AUDIT(stats_.data_packets <= stats_.packets)
      << stats_.data_packets << " data packets out of " << stats_.packets;
  BC_AUDIT(stats_.encoded_packets <= stats_.data_packets)
      << stats_.encoded_packets << " encoded out of " << stats_.data_packets
      << " data packets";
  // Coded repair trades bytes for resilience: the always-on v3 wrap can
  // inflate a stream with no redundancy, so the non-inflation invariant
  // only holds for the pure-compression configurations.
  BC_AUDIT(params_.coded_repair || stats_.bytes_out <= stats_.bytes_in)
      << "encoding inflated the stream: " << stats_.bytes_out
      << " bytes out > " << stats_.bytes_in << " bytes in";
  repair_enc_.audit();
  BC_AUDIT(stats_.encoded_packets <= stats_.dependency_links)
      << "every encoded packet references at least one cached packet, but "
      << stats_.encoded_packets << " encoded > "
      << stats_.dependency_links << " dependency links";
  BC_AUDIT(stats_.nack_invalidations <= stats_.nacks_received)
      << stats_.nack_invalidations << " invalidations from "
      << stats_.nacks_received << " NACKs";
  BC_AUDIT(stats_.resyncs_honored <= stats_.resync_requests)
      << stats_.resyncs_honored << " honored resyncs from "
      << stats_.resync_requests << " requests";
  BC_AUDIT(stats_.resyncs_honored <= stats_.flushes)
      << stats_.resyncs_honored << " resync flushes but only "
      << stats_.flushes << " flushes total";
}

util::Bytes Encoder::save_state() {
  util::Bytes out;
  util::put_u64(out, stream_index_);
  util::put_u16(out, epoch_);
  cache::SnapshotWriter w;
  cache_.save(w);
  util::append(out, w.buffer());
  return out;
}

util::Bytes Encoder::save_state_incremental() {
  util::Bytes out;
  util::put_u64(out, stream_index_);
  util::put_u16(out, epoch_);
  cache::SnapshotWriter w;
  cache_.save_incremental(w);
  util::append(out, w.buffer());
  return out;
}

bool Encoder::load_state(util::BytesView snapshot) {
  if (snapshot.size() < 10) return false;
  std::size_t off = 0;
  const std::uint64_t stream_index = util::get_u64(snapshot, off);
  const std::uint16_t epoch = util::get_u16(snapshot, off);
  cache::SnapshotReader r(snapshot.subspan(off));
  if (!cache_.load(r)) return false;
  if (!r.at_end()) {  // trailing bytes: not a snapshot we wrote
    cache_.flush();
    return false;
  }
  stream_index_ = stream_index;
  epoch_ = epoch;
  return true;
}

void Encoder::on_nack(rabin::Fingerprint fp) {
  ++stats_.nacks_received;
  if (cache_.invalidate(fp)) ++stats_.nack_invalidations;
}

void Encoder::on_resync_request(std::uint16_t decoder_epoch) {
  ++stats_.resync_requests;
  if (decoder_epoch != epoch_) return;
  flush();
  ++stats_.flushes;
  ++stats_.resyncs_honored;
}

void Encoder::on_reverse_ack(std::uint64_t flow_key, std::uint32_t ack) {
  if (std::uint32_t* cur = highest_ack_.find(flow_key)) {
    if (util::seq_gt(ack, *cur)) *cur = ack;
  } else {
    highest_ack_.put(flow_key, ack);
  }
}

void Encoder::encode_burst(std::span<packet::Packet* const> pkts,
                           std::span<EncodeInfo> out) {
  BC_CHECK(out.size() >= pkts.size())
      << "encode_burst result span too small: " << out.size() << " < "
      << pkts.size();
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    if (pkts[i] == nullptr) continue;
    if (i + 1 < pkts.size() && pkts[i + 1] != nullptr) {
      __builtin_prefetch(pkts[i + 1]->payload.data());
    }
    out[i] = process(*pkts[i]);
  }
}

EncodeInfo Encoder::process(packet::Packet& pkt) {
  EncodeInfo info;
  info.uid = pkt.uid;
  info.original_size = pkt.payload.size();
  info.sent_size = pkt.payload.size();
  ++stats_.packets;
  if (params_.coded_repair) repair_enc_.begin_packet();

  // Packets too small to hold a window, without transport data, or too
  // large for the 16-bit offsets are forwarded untouched and uncached.
  const auto tcp = data_tcp_info(pkt);
  const bool is_tcp = pkt.proto() == packet::IpProto::kTcp;
  const bool has_data = !is_tcp || tcp.has_value();
  if (pkt.payload.size() < params_.window || !has_data ||
      pkt.payload.size() > 0xFFFF) {
    return info;
  }
  info.data_packet = true;
  ++stats_.data_packets;
  stats_.bytes_in += pkt.payload.size();

  PacketContext ctx;
  if (tcp) ctx.tcp_seq = tcp->seq;
  ctx.flow_key = tcp ? tcp->flow_key : 0;
  ctx.host_key = host_key_of(pkt.ip.src, pkt.ip.dst);
  ctx.stream_index = stream_index_++;
  ctx.payload_size = pkt.payload.size();

  const PolicyDecision decision = policy_->before_encode(ctx);
  if (decision.is_retransmission) {
    info.retransmission = true;
    ++stats_.retransmissions;
  }
  if (decision.flush_cache) {
    flush();
    info.flushed = true;
    ++stats_.flushes;
  }
  if (decision.is_reference) {
    info.reference = true;
    ++stats_.references;
  }

  // Coded repair covers exactly the packets that touch the caches — data
  // packets while the knob and the rung both say so.  A retransmission
  // closes the open generation first (the loss it implies is precisely
  // when buffered repairs help, and it doubles as a tail-loss timer);
  // the rung turning coded repair off closes it so tail members are not
  // left waiting for repairs that will never come.
  const bool fec_active = params_.coded_repair && decision.coded_repair;
  if (params_.coded_repair) {
    if ((fec_active && decision.is_retransmission) ||
        (!fec_active && fec_was_active_)) {
      repair_enc_.close_generation();
    }
    fec_was_active_ = fec_active;
  }

  const util::BytesView payload(pkt.payload);
  const auto& anchors = compute_anchors(tables_, payload, params_, anchor_ws_);

  // ---- Redundancy identification and elimination (Fig. 2 procedure B) ----
  // Regions are built directly into the reusable encoded-form scratch.
  std::vector<EncodedRegion>& regions = enc_.regions;
  regions.clear();
  std::vector<std::uint64_t>& dep_ids = dep_ids_;  // store ids, deduplicated
  dep_ids.clear();
  if (decision.allow_encode) {
    // Probe every anchor's fingerprint up front with slot prefetch
    // (cache/fingerprint_table.h): the table slots stream in while the
    // loop below works, instead of one serialized miss per anchor.  The
    // probes are side-effect free; resolve() replays find()'s exact
    // statistics/stale-erase sequence per anchor, in loop order, so the
    // batched form is observably identical to per-anchor find().
    cache_.probe_batch(anchors, probe_ws_);
    std::size_t cursor = 0;  // end of the last emitted region
    for (std::size_t ai = 0; ai < anchors.size(); ++ai) {
      const rabin::Anchor& a = anchors[ai];
      if (a.offset < cursor) continue;  // inside an already-encoded area
      auto hit = cache_.resolve(a.fp, probe_ws_[ai]);
      if (!hit) continue;
      if (!policy_->admit(ctx, hit->packet->meta)) continue;
      if (params_.ack_gated) {
        // Only reference segments the peer has cumulatively ACKed — such
        // segments passed the decoder and are provably in its cache.
        const cache::PacketMeta& m = hit->packet->meta;
        const std::uint32_t* acked =
            m.has_tcp_seq ? highest_ack_.find(m.flow_key) : nullptr;
        if (acked == nullptr || !util::seq_le(m.tcp_end_seq, *acked)) {
          ++stats_.ack_gate_rejections;
          continue;
        }
      }
      auto m = expand_match(payload, a.offset, hit->packet->payload,
                            hit->offset, params_.window, cursor);
      if (!m) continue;  // fingerprint collision
      if (m->length <= params_.min_region) continue;
      regions.push_back(EncodedRegion{
          a.fp, static_cast<std::uint16_t>(m->new_begin),
          static_cast<std::uint16_t>(m->stored_begin),
          static_cast<std::uint16_t>(m->length)});
      cursor = m->new_begin + m->length;
      if (std::find(dep_ids.begin(), dep_ids.end(), hit->packet->id) ==
          dep_ids.end()) {
        dep_ids.push_back(hit->packet->id);
        info.deps.push_back(hit->packet->meta.src_uid);
      }
      if (regions.size() == 255) break;  // shim region_count is u8
    }
  }

  // ---- Cache update (Fig. 2 procedure C), always over the original ----
  cache::PacketMeta meta;
  meta.has_tcp_seq = tcp.has_value();
  meta.tcp_seq = tcp ? tcp->seq : 0;
  meta.tcp_end_seq = tcp ? tcp->end_seq : 0;
  meta.flow_key = ctx.flow_key;
  meta.stream_index = ctx.stream_index;
  meta.epoch = epoch_;
  meta.src_uid = pkt.uid;
  meta.host_key = ctx.host_key;
  cache_.update(payload, anchors, meta);

  // ---- Substitute ----
  if (fec_active) {
    // Every data packet is wrapped in the v3 shim so it carries a
    // generation tag — the decoder-side reorder/repair machinery needs
    // the complete cache-touching stream sequenced, not just the packets
    // that happened to compress.  Of the two encodings (regions + the
    // literal gaps vs one plain literal run), the smaller wins.
    EncodedPayload& enc = enc_;  // regions already built in place above
    enc.version = kWireVersion3;
    enc.orig_proto = pkt.ip.protocol;
    enc.flags = epoch_bumped_ ? kFlagFlushEpoch : 0;
    enc.epoch = epoch_;
    enc.orig_len = static_cast<std::uint16_t>(pkt.payload.size());
    enc.crc = util::crc32(payload);
    enc.literals.clear();
    if (!regions.empty()) {
      std::size_t pos = 0;
      for (const EncodedRegion& r : regions) {
        enc.literals.insert(enc.literals.end(), pkt.payload.begin() + pos,
                            pkt.payload.begin() + r.offset_new);
        pos = static_cast<std::size_t>(r.offset_new) + r.length;
      }
      enc.literals.insert(enc.literals.end(), pkt.payload.begin() + pos,
                          pkt.payload.end());
      if (enc.wire_size() >= kShimBytesV3 + pkt.payload.size()) {
        regions.clear();
        info.deps.clear();
        enc.literals.assign(pkt.payload.begin(), pkt.payload.end());
      }
    } else {
      enc.literals.assign(pkt.payload.begin(), pkt.payload.end());
    }
    const fec::RepairEncoder::Tag tag = repair_enc_.next_tag();
    enc.gen_id = tag.gen_id;
    enc.gen_seq = tag.gen_seq;
    enc.serialize_into(wire_);
    pkt.payload.swap(wire_);
    pkt.ip.protocol = static_cast<std::uint8_t>(packet::IpProto::kDre);
    pkt.ip.total_length = static_cast<std::uint16_t>(
        packet::Ipv4Header::kSize + pkt.payload.size());
    info.sent_size = pkt.payload.size();
    epoch_bumped_ = false;
    if (!regions.empty()) {
      info.encoded = true;
      info.regions = regions.size();
      ++stats_.encoded_packets;
      stats_.regions += regions.size();
      stats_.dependency_links += info.deps.size();
    }
    // Record the finished wire image as this generation's tagged member;
    // reaching G members closes the generation and emits its repairs.
    packet::to_wire_into(pkt, fec_wire_);
    repair_enc_.add_member(fec_wire_);
  } else if (!regions.empty()) {
    // Pure-compression path: substitute only if it shrinks the packet.
    EncodedPayload& enc = enc_;
    enc.version = params_.epoch_resync ? kWireVersion2 : 1;
    enc.orig_proto = pkt.ip.protocol;
    enc.flags = epoch_bumped_ ? kFlagFlushEpoch : 0;
    enc.epoch = epoch_;
    enc.orig_len = static_cast<std::uint16_t>(pkt.payload.size());
    enc.crc = util::crc32(payload);
    enc.literals.clear();
    std::size_t pos = 0;
    for (const EncodedRegion& r : regions) {
      enc.literals.insert(enc.literals.end(), pkt.payload.begin() + pos,
                          pkt.payload.begin() + r.offset_new);
      pos = static_cast<std::size_t>(r.offset_new) + r.length;
    }
    enc.literals.insert(enc.literals.end(), pkt.payload.begin() + pos,
                        pkt.payload.end());
    if (enc.wire_size() < pkt.payload.size()) {
      enc.serialize_into(wire_);
      pkt.payload.swap(wire_);
      pkt.ip.protocol = static_cast<std::uint8_t>(packet::IpProto::kDre);
      pkt.ip.total_length = static_cast<std::uint16_t>(
          packet::Ipv4Header::kSize + pkt.payload.size());
      info.encoded = true;
      info.regions = regions.size();
      info.sent_size = pkt.payload.size();
      epoch_bumped_ = false;
      ++stats_.encoded_packets;
      stats_.regions += regions.size();
      stats_.dependency_links += info.deps.size();
    } else {
      info.deps.clear();
    }
  }

  if (params_.coded_repair) info.repairs = repair_enc_.emitted();
  stats_.bytes_out += info.sent_size;
  return info;
}

}  // namespace bytecache::core
