// The two-tier cache facade the codecs hold (DESIGN.md §14).
//
// CacheTier mirrors ByteCache's API exactly, so the encoder and decoder
// swapped one member type and kept every call site.  The hot path is the
// L1 (the existing ByteCache, untouched): probes, updates, and most hits
// never know the tier exists, and with no L2 configured (the default)
// the facade is a passthrough — bit-identical behavior to the flat
// cache, which the equivalence suite pins.
//
// With an L2 (CacheConfig::l2_bytes > 0, an L2Store stripe attached):
//   - L1 budget evictions demote into the stripe (DemoteSink), carrying
//     the fingerprints the evicted packet still owned into the L2 index.
//   - A lookup missing the L1 falls through to the stripe; an L2 hit
//     serves the match immediately and enqueues the packet for deferred
//     promotion, applied at the next update() so the re-insertion lands
//     just below the incoming packet in recency — and never mutates the
//     L1 mid-match-loop.
//   - update() erases the freshly indexed fingerprints from the L2 index
//     (ownership follows the newest packet), preserving the invariant
//     that every fingerprint resolves in exactly one tier and every
//     packet id is resident in exactly one tier — which is what makes
//     promotion's unconditional re-indexing safe.  audit() checks both.
//
// Snapshots: save()/load() emit the legacy flat "BCC1" block when no L2
// is attached (byte-identical to the pre-tier persist format) and the
// two-tier "BCT1" container when one is; load() sniffs the magic, so
// either side reads either vintage.  With SnapshotMode::kIncremental the
// tier also journals update/invalidate/flush operations, and
// save_incremental() emits a CRC-guarded "BCI1" delta replayed on load.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/byte_cache.h"
#include "cache/cache_config.h"
#include "cache/l2_store.h"
#include "cache/snapshot.h"

namespace bytecache::cache {

class CacheTier final : private DemoteSink {
 public:
  /// An L2-less tier (l2 == nullptr) is a plain ByteCache behind the same
  /// API.  With a store, one stripe is attached (claimed for this codec's
  /// thread) and L1 evictions start demoting into it.
  explicit CacheTier(const CacheConfig& config = {},
                     L2Store* l2 = nullptr);

  // The L1 store points back at this object as its demote sink.
  CacheTier(const CacheTier&) = delete;
  CacheTier& operator=(const CacheTier&) = delete;

  /// The cache-update procedure (paper Fig. 2 C) plus tier maintenance:
  /// queued promotions apply first (in hit order), then the L1 update,
  /// then the new anchors are unindexed from the L2 (ownership moved),
  /// and the stripe's epoch boundary runs (budget eviction + limbo).
  std::uint64_t update(util::BytesView payload,
                       const std::vector<rabin::Anchor>& anchors,
                       const PacketMeta& meta);

  /// L1 lookup, falling through to the L2 on miss.  An L2 hit is served
  /// from the stripe (pointers valid through this packet's update) and
  /// promoted at the next update().
  [[nodiscard]] std::optional<CacheHit> find(rabin::Fingerprint fp);

  /// Batched L1 probe (see ByteCache::probe_batch); the L2 fallthrough
  /// happens in resolve(), so a probe stays side-effect free.
  void probe_batch(std::span<const rabin::Anchor> anchors,
                   std::vector<ProbeResult>& out) const {
    l1_.probe_batch(anchors, out);
  }

  /// Resolves one probed anchor exactly as ByteCache::resolve, then
  /// falls through to the L2 on miss — so probe+resolve remains
  /// observably identical to find() in the same order, tiered or not.
  [[nodiscard]] std::optional<CacheHit> resolve(rabin::Fingerprint fp,
                                                const ProbeResult& probe);

  void prefetch(rabin::Fingerprint fp) const {
    l1_.prefetch(fp);
    if (stripe_ != nullptr) stripe_->prefetch(fp);
  }

  /// Cache flush (paper Section V-A): both tiers.
  void flush();

  /// NACK invalidation: kills the owning packet in whichever tier holds
  /// the fingerprint (never demotes it — the peer lost those bytes).
  bool invalidate(rabin::Fingerprint fp);

  /// Deep invariant audit: both tiers, plus the cross-tier exclusivity
  /// invariants (no fingerprint indexed in both tiers, no packet id
  /// resident in both).
  void audit() const;

  // ---- L1 passthrough (telemetry, tests, snapshot primitives) ----
  [[nodiscard]] const CacheStats& stats() const { return l1_.stats(); }
  [[nodiscard]] const PacketStore& store() const { return l1_.store(); }
  [[nodiscard]] const FingerprintTable& table() const { return l1_.table(); }
  [[nodiscard]] std::size_t fingerprint_count() const {
    return l1_.fingerprint_count();
  }

  // ---- Tier introspection ----
  [[nodiscard]] bool has_l2() const { return stripe_ != nullptr; }
  /// This codec's stripe (nullptr when no L2 is attached).
  [[nodiscard]] const L2Store::Stripe* stripe() const { return stripe_; }
  /// Movement counters; a zero struct when no L2 is attached.
  [[nodiscard]] const TierStats& tier_stats() const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  // ---- Versioned snapshot/restore (cache/snapshot.h) ----

  /// Full image: the legacy flat "BCC1" block when no L2 is attached
  /// (byte-identical to the pre-tier format), the "BCT1" container
  /// otherwise.  Starts a new journal epoch.
  void save(SnapshotWriter& w);

  /// Incremental delta ("BCI1"): the operations journaled since the last
  /// save boundary, CRC-guarded.  Falls back to a full image when the
  /// journal is unavailable (kFull mode, overflow, or no boundary yet).
  void save_incremental(SnapshotWriter& w);

  /// Restores from any of the three formats (sniffed by magic).  A
  /// "BCI1" delta only applies on top of the exact state version it was
  /// taken against (the save boundary sequence number).  Returns false —
  /// with the tier flushed and the reader failed — on malformed input,
  /// a version mismatch, or a format/configuration mismatch (a "BCT1"
  /// image needs an attached L2).
  bool load(SnapshotReader& r);

  /// State version, bumped at each save boundary (deltas chain on it).
  [[nodiscard]] std::uint64_t snapshot_seq() const { return seq_; }

 private:
  static constexpr std::size_t kJournalCapBytes = 8 * 1024 * 1024;
  // Journal op tags (BCI1).
  static constexpr std::uint8_t kOpUpdate = 0x01;
  static constexpr std::uint8_t kOpInvalidate = 0x02;
  static constexpr std::uint8_t kOpFlush = 0x03;

  void on_demote(const CachedPacket& pkt,
                 std::span<const DemotedFp> owned) override;

  /// Applies the queued L2 -> L1 promotions in hit order.
  void apply_promotions();

  void journal_update(util::BytesView payload,
                      const std::vector<rabin::Anchor>& anchors,
                      const PacketMeta& meta);
  void journal_op(std::uint8_t tag, rabin::Fingerprint fp);
  void journal_reset();
  [[nodiscard]] bool journaling() const {
    return config_.snapshot_mode == SnapshotMode::kIncremental &&
           !replaying_;
  }

  bool load_flat(SnapshotReader& r);
  bool load_tier(SnapshotReader& r);
  bool load_incremental(SnapshotReader& r);
  bool reject(SnapshotReader& r);

  ByteCache l1_;
  L2Store::Stripe* stripe_ = nullptr;  // owned by the shared L2Store
  CacheConfig config_;

  /// Ids awaiting promotion, in first-hit order; applied at update().
  std::vector<std::uint64_t> promote_queue_;
  /// Reused per-promotion scratch (owned fingerprints out of the L2).
  std::vector<DemotedFp> owned_scratch_;
  L2Store::Stripe::Taken taken_;

  // Incremental-snapshot journal (SnapshotMode::kIncremental only).
  SnapshotWriter journal_;
  std::uint32_t journal_ops_ = 0;
  bool journal_overflow_ = true;  // no boundary yet: nothing to chain on
  bool replaying_ = false;
  std::uint64_t seq_ = 0;
};

}  // namespace bytecache::cache
