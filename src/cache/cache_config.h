// Construction surface of the cache subsystem.
//
// One struct describes every cache a codec owns: the hot per-shard L1
// (the slab/LRU PacketStore + FingerprintTable pair), the optional large
// shared L2 behind it (cache/l2_store.h), the per-host-pair admission
// budget inside the L2, the eviction policy, and how snapshots are
// taken.  Replaces the former positional byte-budget constructors
// (`ByteCache(std::size_t)`, `PacketStore(std::size_t)`): every knob is
// named, a config travels through core::GatewayConfig unchanged, and an
// encoder-side/decoder-side pair built from the same config is
// guaranteed to run identical cache rules — the lockstep requirement.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bytecache::cache {

/// Victim selection for the L2 tier (the L1 stays pure LRU — its
/// eviction order is part of the pinned wire-byte behavior).
enum class EvictionPolicy : std::uint8_t {
  /// Least-recently-used, the default: with l2_bytes == 0 this is
  /// bit-identical to the pre-tier flat cache.
  kLru,
  /// Frequency-aware (CLFU-style, for Zipf-shaped popularity): eviction
  /// scans a bounded window from the cold end, skips entries with a
  /// nonzero hit count (halving it, so staleness decays), and evicts the
  /// least-hit candidate.  Deterministic — no clocks, no randomness —
  /// so paired gateways still evolve in lockstep.
  kZipfAware,
};

/// How CacheTier::save emits snapshots.
enum class SnapshotMode : std::uint8_t {
  /// Every save() writes the full cache image.
  kFull,
  /// save() writes only the mutations since the previous save (a
  /// journal of insert/invalidate/flush ops, CRC-protected); falls back
  /// to a full image on the first save and when the journal overflows.
  kIncremental,
};

struct CacheConfig {
  /// L1 byte budget: bounds the sum of payload bytes in the hot
  /// PacketStore (0 = unbounded, the paper's within-experiment setting).
  std::size_t l1_bytes = 0;

  /// L2 byte budget shared across every shard attached to one L2Store
  /// (0 = no L2 tier; budget-evicted L1 packets are simply dropped,
  /// exactly the flat pre-tier behavior).
  std::size_t l2_bytes = 0;

  /// Admission budget per host pair inside the L2: a host pair over this
  /// many bytes evicts its own coldest packets to admit new ones — never
  /// its neighbors' (0 = no per-pair budget).
  std::size_t per_host_pair_bytes = 0;

  /// L2 victim selection.
  EvictionPolicy eviction = EvictionPolicy::kLru;

  /// Snapshot strategy for CacheTier::save.
  SnapshotMode snapshot_mode = SnapshotMode::kFull;

  [[nodiscard]] constexpr bool has_l2() const { return l2_bytes > 0; }
};

}  // namespace bytecache::cache
