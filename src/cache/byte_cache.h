// The byte cache used by both the encoder and decoder gateways.
//
// Combines the packet store and the fingerprint table and keeps them
// consistent: when the store evicts a payload (byte budget or NACK), the
// eviction hook purges every fingerprint entry still pointing at it, so
// the table's memory is bounded by the live cache contents.  A
// fingerprint hit whose packet has nevertheless vanished is treated as a
// miss and lazily erased (defense in depth).  Encoder and decoder run the
// *identical* cache-update procedure over the same (original) payload
// bytes, so as long as packets are delivered in order and undamaged the
// two caches evolve in lockstep — the paper's core synchronization
// assumption, and exactly what loss/reorder/corruption breaks
// (Section IV).
#pragma once

#include <cstdint>
#include <span>

#include "cache/cache_config.h"
#include "cache/fingerprint_table.h"
#include "cache/packet_store.h"
#include "cache/snapshot.h"
#include "obs/fields.h"
#include "rabin/window.h"
#include "util/bytes.h"

namespace bytecache::cache {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t stale_hits = 0;  // fingerprint present, packet evicted
  std::uint64_t packets_inserted = 0;
  std::uint64_t fingerprints_inserted = 0;
  std::uint64_t fingerprints_purged = 0;  // erased by the eviction hook
  std::uint64_t flushes = 0;
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const CacheStats*) {
  return obs::field_table<CacheStats>(
      obs::Field<CacheStats>{"lookups", &CacheStats::lookups},
      obs::Field<CacheStats>{"hits", &CacheStats::hits},
      obs::Field<CacheStats>{"stale_hits", &CacheStats::stale_hits},
      obs::Field<CacheStats>{"packets_inserted",
                             &CacheStats::packets_inserted},
      obs::Field<CacheStats>{"fingerprints_inserted",
                             &CacheStats::fingerprints_inserted},
      obs::Field<CacheStats>{"fingerprints_purged",
                             &CacheStats::fingerprints_purged},
      obs::Field<CacheStats>{"flushes", &CacheStats::flushes});
}

/// Generic aggregation across the per-shard caches of a sharded gateway
/// (gateway/sharded_gateways.h) — one descriptor-driven implementation
/// shared by every stats struct.
using obs::merge_into;
using obs::reset;

/// Result of a successful fingerprint lookup.
struct CacheHit {
  const CachedPacket* packet = nullptr;
  std::uint16_t offset = 0;  // window start within packet->payload
};

/// A fingerprint the eviction purge just removed because the departing
/// packet still owned its table entry, with the stored window offset —
/// exactly what the L2 tier needs to re-index the packet after demotion.
struct DemotedFp {
  rabin::Fingerprint fp = 0;
  std::uint16_t offset = 0;
};

/// Receives packets the L1 expels to meet its byte budget (CacheTier
/// implements it to admit them into the L2).  Called while the packet's
/// payload bytes are still valid, and only for *budget* evictions —
/// explicitly erased packets (NACK invalidation) must die everywhere.
class DemoteSink {
 public:
  virtual ~DemoteSink() = default;
  virtual void on_demote(const CachedPacket& pkt,
                         std::span<const DemotedFp> owned) = 0;
};

class ByteCache final : private EvictionListener {
 public:
  /// `config.l1_bytes` bounds stored payload bytes (0 = unbounded); the
  /// fingerprint table is pre-sized from it (about one selected anchor
  /// per 16 payload bytes at the paper's parameters).  The L2 knobs are
  /// read by CacheTier, not here.
  explicit ByteCache(const CacheConfig& config = {});

  // The store holds a pointer back to this object as its eviction
  // listener; relocation would leave it dangling.
  ByteCache(const ByteCache&) = delete;
  ByteCache& operator=(const ByteCache&) = delete;

  /// Runs the cache-update procedure (paper Fig. 2 C): stores `payload`
  /// and points every anchor's fingerprint at it.  `anchors` must be the
  /// selected anchors of `payload`.  No-op if `anchors` is empty (a packet
  /// with no selected fingerprint can never be referenced).
  /// Returns the store id (0 if not stored).
  std::uint64_t update(util::BytesView payload,
                       const std::vector<rabin::Anchor>& anchors,
                       const PacketMeta& meta);

  /// Fingerprint lookup with lazy invalidation.  Returns nullopt on miss.
  [[nodiscard]] std::optional<CacheHit> find(rabin::Fingerprint fp);

  /// Batched-probe front half of find(): probes every anchor's
  /// fingerprint with slot prefetch (FingerprintTable::probe_batch) and
  /// resizes `out` to anchors.size().  Side-effect free — no statistics,
  /// no LRU touch — so probing anchors the match loop later skips cannot
  /// perturb eviction order or counters.
  void probe_batch(std::span<const rabin::Anchor> anchors,
                   std::vector<ProbeResult>& out) const;

  /// Back half: resolves one probed anchor with exactly find()'s
  /// statistics, LRU-touch, and stale-erase sequence, so a
  /// probe_batch+resolve loop is observably identical to per-anchor
  /// find() calls in the same order.  `fp` must be the fingerprint the
  /// probe was issued for.
  [[nodiscard]] std::optional<CacheHit> resolve(rabin::Fingerprint fp,
                                                const ProbeResult& probe);

  /// Hints the cache to pull `fp`'s fingerprint-table slot (decoder's
  /// next-region lookahead).
  void prefetch(rabin::Fingerprint fp) const { table_.prefetch(fp); }

  /// Cache flush (paper Section V-A).
  void flush();

  /// Reacts to a decoder NACK for `fp`: removes the fingerprint AND the
  /// whole packet it points to (the eviction hook purges every other
  /// fingerprint referencing that packet).  Returns true if an entry
  /// existed.
  bool invalidate(rabin::Fingerprint fp);

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): audits the store, audits the fingerprint table against it,
  /// and checks the statistics counters for internal consistency.
  void audit() const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const PacketStore& store() const { return store_; }
  [[nodiscard]] const FingerprintTable& table() const { return table_; }
  [[nodiscard]] std::size_t fingerprint_count() const {
    return table_.size();
  }

  /// Snapshot-restore primitives (see cache/snapshot.h); bypass the
  /// normal update path and statistics.  restore_fingerprint also records
  /// the fingerprint on its packet so the eviction purge keeps working
  /// after a warm restart.
  void restore_packet(std::uint64_t id, util::BytesView payload,
                      const PacketMeta& meta) {
    store_.restore(id, payload, meta);
  }
  void restore_fingerprint(rabin::Fingerprint fp, FpEntry entry) {
    table_.put(fp, entry);
    store_.note_fingerprint(entry.packet_id, fp);
  }

  /// Serializes the cache contents (not statistics) as one "BCC1" block
  /// — byte-identical to the original persist.h format, so snapshots
  /// from before the tier redesign stay readable and vice versa.
  void save(SnapshotWriter& w) const;

  /// Restores one "BCC1" block, replacing the current contents and
  /// consuming exactly the block's bytes (callers embedding the block in
  /// a larger snapshot keep reading after it; stand-alone callers check
  /// r.at_end()).  Returns false — with the cache flushed and the reader
  /// failed — on malformed input.
  bool load(SnapshotReader& r);

  // ---- Tier plumbing (cache/cache_tier.h) ----

  /// Registers the L1 -> L2 demotion hook (at most one; nullptr
  /// detaches).  Only budget evictions are offered for demotion.
  void set_demote_sink(DemoteSink* sink) { demote_sink_ = sink; }

  /// Re-admits a packet promoted back from the L2 at the MRU end under
  /// its original id.  `fps` is the packet's recorded fingerprint list
  /// (for the future eviction purge); `owned` are the entries the L2
  /// index still attributed to it, which re-enter the L1 table.  May
  /// evict (and therefore demote) LRU entries.  Statistics are not
  /// touched: promotion is tier bookkeeping, not a paper cache event.
  void readmit(std::uint64_t id, util::BytesView payload,
               const PacketMeta& meta,
               const std::vector<rabin::Fingerprint>& fps,
               std::span<const DemotedFp> owned);

  [[nodiscard]] bool has_fingerprint(rabin::Fingerprint fp) const {
    return table_.get(fp).has_value();
  }

  /// Patches a restored packet's host-pair attribution (the tier
  /// snapshot stores host keys out of band to keep the BCC1 block
  /// byte-identical); no-op if the id is absent.
  void set_host_key(std::uint64_t id, std::uint64_t host_key) {
    store_.set_host_key(id, host_key);
  }

 private:
  void on_evict(const CachedPacket& pkt, EvictReason reason) override;

  PacketStore store_;
  FingerprintTable table_;
  CacheStats stats_;
  DemoteSink* demote_sink_ = nullptr;
  /// Owned-fingerprint scratch for on_evict, reused so steady-state
  /// demotion stays allocation-free.
  std::vector<DemotedFp> demote_scratch_;
};

}  // namespace bytecache::cache
