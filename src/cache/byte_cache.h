// The byte cache used by both the encoder and decoder gateways.
//
// Combines the packet store and the fingerprint table and keeps them
// consistent: when the store evicts a payload (byte budget or NACK), the
// eviction hook purges every fingerprint entry still pointing at it, so
// the table's memory is bounded by the live cache contents.  A
// fingerprint hit whose packet has nevertheless vanished is treated as a
// miss and lazily erased (defense in depth).  Encoder and decoder run the
// *identical* cache-update procedure over the same (original) payload
// bytes, so as long as packets are delivered in order and undamaged the
// two caches evolve in lockstep — the paper's core synchronization
// assumption, and exactly what loss/reorder/corruption breaks
// (Section IV).
#pragma once

#include <cstdint>

#include "cache/fingerprint_table.h"
#include "cache/packet_store.h"
#include "obs/fields.h"
#include "rabin/window.h"
#include "util/bytes.h"

namespace bytecache::cache {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t stale_hits = 0;  // fingerprint present, packet evicted
  std::uint64_t packets_inserted = 0;
  std::uint64_t fingerprints_inserted = 0;
  std::uint64_t fingerprints_purged = 0;  // erased by the eviction hook
  std::uint64_t flushes = 0;
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const CacheStats*) {
  return obs::field_table<CacheStats>(
      obs::Field<CacheStats>{"lookups", &CacheStats::lookups},
      obs::Field<CacheStats>{"hits", &CacheStats::hits},
      obs::Field<CacheStats>{"stale_hits", &CacheStats::stale_hits},
      obs::Field<CacheStats>{"packets_inserted",
                             &CacheStats::packets_inserted},
      obs::Field<CacheStats>{"fingerprints_inserted",
                             &CacheStats::fingerprints_inserted},
      obs::Field<CacheStats>{"fingerprints_purged",
                             &CacheStats::fingerprints_purged},
      obs::Field<CacheStats>{"flushes", &CacheStats::flushes});
}

/// Generic aggregation across the per-shard caches of a sharded gateway
/// (gateway/sharded_gateways.h) — one descriptor-driven implementation
/// shared by every stats struct.
using obs::merge_into;
using obs::reset;

/// Result of a successful fingerprint lookup.
struct CacheHit {
  const CachedPacket* packet = nullptr;
  std::uint16_t offset = 0;  // window start within packet->payload
};

class ByteCache final : private EvictionListener {
 public:
  /// `byte_budget` bounds stored payload bytes (0 = unbounded); the
  /// fingerprint table is pre-sized from it (about one selected anchor
  /// per 16 payload bytes at the paper's parameters).
  explicit ByteCache(std::size_t byte_budget = 0);

  // The store holds a pointer back to this object as its eviction
  // listener; relocation would leave it dangling.
  ByteCache(const ByteCache&) = delete;
  ByteCache& operator=(const ByteCache&) = delete;

  /// Runs the cache-update procedure (paper Fig. 2 C): stores `payload`
  /// and points every anchor's fingerprint at it.  `anchors` must be the
  /// selected anchors of `payload`.  No-op if `anchors` is empty (a packet
  /// with no selected fingerprint can never be referenced).
  /// Returns the store id (0 if not stored).
  std::uint64_t update(util::BytesView payload,
                       const std::vector<rabin::Anchor>& anchors,
                       const PacketMeta& meta);

  /// Fingerprint lookup with lazy invalidation.  Returns nullopt on miss.
  [[nodiscard]] std::optional<CacheHit> find(rabin::Fingerprint fp);

  /// Batched-probe front half of find(): probes every anchor's
  /// fingerprint with slot prefetch (FingerprintTable::probe_batch) and
  /// resizes `out` to anchors.size().  Side-effect free — no statistics,
  /// no LRU touch — so probing anchors the match loop later skips cannot
  /// perturb eviction order or counters.
  void probe_batch(std::span<const rabin::Anchor> anchors,
                   std::vector<ProbeResult>& out) const;

  /// Back half: resolves one probed anchor with exactly find()'s
  /// statistics, LRU-touch, and stale-erase sequence, so a
  /// probe_batch+resolve loop is observably identical to per-anchor
  /// find() calls in the same order.  `fp` must be the fingerprint the
  /// probe was issued for.
  [[nodiscard]] std::optional<CacheHit> resolve(rabin::Fingerprint fp,
                                                const ProbeResult& probe);

  /// Hints the cache to pull `fp`'s fingerprint-table slot (decoder's
  /// next-region lookahead).
  void prefetch(rabin::Fingerprint fp) const { table_.prefetch(fp); }

  /// Cache flush (paper Section V-A).
  void flush();

  /// Reacts to a decoder NACK for `fp`: removes the fingerprint AND the
  /// whole packet it points to (the eviction hook purges every other
  /// fingerprint referencing that packet).  Returns true if an entry
  /// existed.
  bool invalidate(rabin::Fingerprint fp);

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): audits the store, audits the fingerprint table against it,
  /// and checks the statistics counters for internal consistency.
  void audit() const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const PacketStore& store() const { return store_; }
  [[nodiscard]] const FingerprintTable& table() const { return table_; }
  [[nodiscard]] std::size_t fingerprint_count() const {
    return table_.size();
  }

  /// Snapshot-restore primitives (see cache/persist.h); bypass the
  /// normal update path and statistics.  restore_fingerprint also records
  /// the fingerprint on its packet so the eviction purge keeps working
  /// after a warm restart.
  void restore_packet(std::uint64_t id, util::BytesView payload,
                      const PacketMeta& meta) {
    store_.restore(id, payload, meta);
  }
  void restore_fingerprint(rabin::Fingerprint fp, FpEntry entry) {
    table_.put(fp, entry);
    store_.note_fingerprint(entry.packet_id, fp);
  }

 private:
  void on_evict(const CachedPacket& pkt) override;

  PacketStore store_;
  FingerprintTable table_;
  CacheStats stats_;
};

}  // namespace bytecache::cache
