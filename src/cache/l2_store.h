// The large shared L2 tier behind every shard's hot L1 (DESIGN.md §14).
//
// One L2Store serves a whole gateway: the sharded gateways construct a
// single store and every shard's codec attaches to it.  Internally the
// store is striped — one stripe per attached codec, each touched only by
// its owner's thread — so the read path never takes a lock (bc-nolock)
// and, because flows are partitioned onto shards by host-pair hash,
// encoder-side and decoder-side stripes see identical packet streams and
// evolve in lockstep.  The shared l2_bytes budget divides into fixed
// per-stripe shares at construction: an elastic global budget was
// rejected deliberately, because cross-stripe pressure would make
// eviction depend on cross-shard *timing*, and a decoder stripe evicting
// what its encoder twin kept turns straight into perceived packet loss
// (paper Section IV).
//
// Reclamation is epoch-deferred: every byte released during one packet's
// processing (promotion take-out, budget eviction, admission eviction)
// parks its arena slice on a limbo list and is freed only at the
// end-of-packet epoch boundary (Stripe::end_packet), so any payload
// pointer the match loop obtained this packet stays readable with no
// reference counting and no synchronization.
//
// Admission control: a demoted packet charges its host pair
// (PacketMeta::host_key); a pair over per_host_pair_bytes evicts its own
// coldest packets first — never its neighbors' — and a packet larger
// than the pair budget (or the stripe share) is rejected outright.
// Victim selection for stripe-share eviction goes through the eviction
// policy seam: pure LRU by default, or the deterministic frequency-aware
// kZipfAware scan (cache/cache_config.h).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/byte_cache.h"
#include "cache/cache_config.h"
#include "cache/flat_map.h"
#include "cache/host_budget.h"
#include "cache/slice_arena.h"
#include "cache/snapshot.h"
#include "obs/fields.h"
#include "rabin/window.h"

namespace bytecache::cache {

/// Per-tier movement and occupancy counters (one struct per stripe,
/// surfaced as "encoder.cache.tier.*" / "decoder.cache.tier.*").
struct TierStats {
  std::uint64_t l2_hits = 0;         // lookups served from the L2
  std::uint64_t promotions = 0;      // L2 -> L1 (on hit, deferred)
  std::uint64_t demotions = 0;       // L1 -> L2 admission attempts
  std::uint64_t demotions_rejected = 0;  // refused by admission control
  std::uint64_t l2_evictions = 0;    // stripe-share budget evictions
  std::uint64_t host_evictions = 0;  // a pair evicting its own coldest
  std::uint64_t l2_fingerprints_purged = 0;  // index entries of evictees
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const TierStats*) {
  using S = TierStats;
  return obs::field_table<S>(
      obs::Field<S>{"l2_hits", &S::l2_hits},
      obs::Field<S>{"promotions", &S::promotions},
      obs::Field<S>{"demotions", &S::demotions},
      obs::Field<S>{"demotions_rejected", &S::demotions_rejected},
      obs::Field<S>{"l2_evictions", &S::l2_evictions},
      obs::Field<S>{"host_evictions", &S::host_evictions},
      obs::Field<S>{"l2_fingerprints_purged", &S::l2_fingerprints_purged});
}

using obs::merge_into;
using obs::reset;

class L2Store {
 public:
  /// One shard's private view of the store.  All methods except the
  /// read-only occupancy accessors must be called by the owning thread.
  class Stripe {
   public:
    Stripe(const CacheConfig& config, std::size_t share_bytes);

    // The global recency chain holds raw slot indices; relocation would
    // orphan them (and the demote sink caches the pointer).
    Stripe(const Stripe&) = delete;
    Stripe& operator=(const Stripe&) = delete;

    /// L2 lookup: touches the packet's global and per-host recency, bumps
    /// its hit count, and — the first time in its current L2 residence —
    /// sets `enqueue_promotion` so the tier queues it for deferred
    /// promotion.  The returned pointers stay valid until end_packet().
    [[nodiscard]] std::optional<CacheHit> find(rabin::Fingerprint fp,
                                               bool& enqueue_promotion);

    void prefetch(rabin::Fingerprint fp) const { fp_index_.prefetch(fp); }

    /// Admits a packet demoted from the L1 (DemoteSink path).  `owned`
    /// are the fingerprints the L1 purge attributed to it; they enter
    /// the L2 index.  Applies per-host-pair admission control first.
    void admit(const CachedPacket& pkt, std::span<const DemotedFp> owned);

    /// A promoted packet leaving the stripe: meta/fingerprints moved to
    /// `out`, index entries it still owns appended to `owned_out` (and
    /// removed here).  The payload view stays readable until
    /// end_packet() (limbo).  False if `id` is not resident.
    struct Taken {
      PayloadView payload;
      PacketMeta meta;
      std::vector<rabin::Fingerprint> fps;
    };
    bool take(std::uint64_t id, Taken& out,
              std::vector<DemotedFp>& owned_out);

    /// The cache-update procedure overwrote these fingerprints in the L1
    /// table: whatever the L2 index held for them is stale — drop it, so
    /// each fingerprint resolves in exactly one tier (the newest owner).
    void unindex(std::span<const rabin::Anchor> anchors);

    /// NACK invalidation reached the L2: erase the packet owning `fp`
    /// wholesale (plus every index entry it owns).  True if it existed.
    bool invalidate(rabin::Fingerprint fp);

    /// End-of-packet epoch boundary: enforce the stripe share (deferred
    /// budget eviction through the policy seam) and free limbo slices.
    void end_packet();

    /// Drops everything (cache flush).
    void clear();

    /// Serializes / restores one "BCL2" block (contents + recency +
    /// per-host attribution; not statistics).  load() consumes exactly
    /// the block and returns false, with the stripe cleared and the
    /// reader failed, on malformed input.
    void save(SnapshotWriter& w) const;
    bool load(SnapshotReader& r);

    /// Deep invariant audit (BC_AUDIT): chain/index bijections, byte and
    /// per-host accounting, zero stale index entries (the PR-2 purge
    /// invariant extended to the L2), budgets, and an empty limbo list.
    void audit() const;

    [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
    [[nodiscard]] std::size_t size() const { return id_index_.size(); }
    [[nodiscard]] bool contains(std::uint64_t id) const {
      return id_index_.find(id) != nullptr;
    }
    [[nodiscard]] std::size_t fingerprints() const {
      return fp_index_.size();
    }
    [[nodiscard]] std::size_t share_bytes() const { return share_; }
    [[nodiscard]] const HostLedger& hosts() const { return hosts_; }
    /// Bytes currently charged to `host_key` (tests/telemetry).
    [[nodiscard]] std::size_t host_bytes(std::uint64_t host_key) const;
    [[nodiscard]] const TierStats& stats() const { return stats_; }
    [[nodiscard]] TierStats& stats() { return stats_; }

    template <typename Fn>
    void for_each_fingerprint(Fn&& fn) const {
      fp_index_.for_each(fn);
    }

   private:
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
    static constexpr std::uint32_t kZipfScan = 8;

    struct Slot {
      CachedPacket pkt;
      SliceArena::Slice slice;
      std::uint32_t prev = kNil;       // global chain (head = warmest)
      std::uint32_t next = kNil;
      std::uint32_t host_prev = kNil;  // per-host-pair chain
      std::uint32_t host_next = kNil;
      std::uint32_t hit_count = 0;     // kZipfAware decayed frequency
      bool live = false;
      bool promote_pending = false;
    };

    std::uint32_t acquire_slot();
    /// Frees the slot, parking its slice on the limbo list (never frees
    /// payload bytes mid-packet — the deferred-reclamation contract).
    void retire_slot(std::uint32_t slot);
    void link_front(std::uint32_t slot);
    void link_back(std::uint32_t slot);
    void unlink(std::uint32_t slot);
    void host_link_front(std::uint32_t slot);
    void host_link_back(std::uint32_t slot);
    void host_unlink(std::uint32_t slot);
    void touch(std::uint32_t slot);
    /// Purges the index entries `slot` owns and retires it; returns the
    /// number of index entries purged.
    std::size_t evict_slot(std::uint32_t slot);
    /// Victim for a stripe-share eviction per the policy seam.
    [[nodiscard]] std::uint32_t pick_victim();

    CacheConfig config_;
    std::size_t share_;
    std::size_t bytes_used_ = 0;
    std::uint32_t head_ = kNil;
    std::uint32_t tail_ = kNil;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_;
    FlatMap64<std::uint32_t> id_index_;  // packet id -> slot
    FlatMap64<FpEntry> fp_index_;        // fingerprint -> (id, offset)
    SliceArena arena_;
    HostLedger hosts_;
    std::vector<SliceArena::Slice> limbo_;
    TierStats stats_;
  };

  /// `stripes` is the number of codecs that will attach (the gateway's
  /// shard count); the l2_bytes budget divides evenly across them.
  L2Store(const CacheConfig& config, std::size_t stripes);

  /// Claims the next unclaimed stripe (construction time, driver
  /// thread).  Checks that the store was sized for this many attachers.
  [[nodiscard]] Stripe* attach();

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::size_t stripes() const { return stripes_.size(); }
  [[nodiscard]] const Stripe& stripe(std::size_t i) const {
    return *stripes_[i];
  }

  /// Aggregate occupancy across stripes (snapshot-time telemetry only:
  /// the per-stripe counters are owned by worker threads).
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t packets() const;
  [[nodiscard]] std::size_t host_pairs() const;

 private:
  CacheConfig config_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t attached_ = 0;
};

}  // namespace bytecache::cache
