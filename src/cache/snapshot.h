// Versioned snapshot I/O: the one save(Writer&) / load(Reader&) surface
// every cache layer implements (ByteCache, L2Store stripes, CacheTier),
// replacing the former persist.h free functions.
//
// A SnapshotWriter is an append-only byte builder; a SnapshotReader is a
// bounds-checked cursor with a sticky failure flag, so load paths can
// read unconditionally and check ok() once per record instead of
// sprinkling size arithmetic.  All integers are big-endian, matching the
// original BCC1 format.
//
// Container formats (each starts with a u32 magic, so load paths can
// sniff what they were handed):
//   "BCC1"  flat ByteCache image (unchanged since PR 3 — old snapshots
//           stay readable, and an L2-less tier still emits exactly it)
//   "BCL2"  one L2 stripe's contents
//   "BCT1"  full two-tier image: seq | BCC1 L1 block | host-key patch
//           table | BCL2 block
//   "BCI1"  incremental delta: base seq | op journal | CRC32
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace bytecache::cache {

inline constexpr std::uint32_t kSnapMagicFlat = 0x42434331;  // "BCC1"
inline constexpr std::uint32_t kSnapMagicL2 = 0x42434C32;    // "BCL2"
inline constexpr std::uint32_t kSnapMagicTier = 0x42435431;  // "BCT1"
inline constexpr std::uint32_t kSnapMagicIncr = 0x42434931;  // "BCI1"

class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { util::put_u8(buf_, v); }
  void u16(std::uint16_t v) { util::put_u16(buf_, v); }
  void u32(std::uint32_t v) { util::put_u32(buf_, v); }
  void u64(std::uint64_t v) { util::put_u64(buf_, v); }
  void bytes(util::BytesView b) { util::append(buf_, b); }

  [[nodiscard]] const util::Bytes& buffer() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Moves the accumulated bytes out, leaving the writer empty.
  [[nodiscard]] util::Bytes take() { return std::move(buf_); }

 private:
  util::Bytes buf_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(util::BytesView data) : data_(data) {}

  std::uint8_t u8() { return have(1) ? util::get_u8(data_, off_) : 0; }
  std::uint16_t u16() { return have(2) ? util::get_u16(data_, off_) : 0; }
  std::uint32_t u32() { return have(4) ? util::get_u32(data_, off_) : 0; }
  std::uint64_t u64() { return have(8) ? util::get_u64(data_, off_) : 0; }

  /// A view of the next `n` raw bytes (empty view + failure if short).
  /// The view aliases the snapshot buffer: valid as long as it is.
  util::BytesView bytes(std::size_t n) {
    if (!have(n)) return {};
    const util::BytesView v = data_.subspan(off_, n);
    off_ += n;
    return v;
  }

  /// The next u32 without consuming it (format sniffing); does not set
  /// the failure flag.
  [[nodiscard]] std::uint32_t peek_u32() const {
    if (data_.size() - off_ < 4) return 0;
    std::size_t off = off_;
    return util::get_u32(data_, off);
  }

  /// Everything consumed so far (CRC coverage spans).
  [[nodiscard]] util::BytesView consumed() const {
    return data_.subspan(0, off_);
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - off_; }
  [[nodiscard]] bool at_end() const { return ok() && remaining() == 0; }
  [[nodiscard]] std::size_t offset() const { return off_; }

  /// Marks the snapshot malformed (semantic validation failures — bad
  /// ids, dangling references — use the same flag as truncation).
  void fail() { failed_ = true; }

 private:
  bool have(std::size_t n) {
    if (failed_ || data_.size() - off_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  util::BytesView data_;
  std::size_t off_ = 0;
  bool failed_ = false;
};

}  // namespace bytecache::cache
