// Byte-cache serialization: warm restarts for long-running gateways.
//
// Operators deploy byte-caching appliances in the backbone (paper Fig. 1);
// losing the whole cache on a process restart throws away exactly the
// history that makes the appliance useful.  This module snapshots a
// ByteCache (payload store in LRU order plus the fingerprint table) to a
// flat byte buffer and restores it bit-exactly.  Both gateways must be
// restored from snapshots taken at the same stream position to stay in
// lockstep — the usual pairing discipline applies.
//
// Format (all integers big-endian):
//   magic "BCC1" | packet_count u32
//   per packet (most- to least-recently used):
//     id u64 | flow_key u64 | src_uid u64 | stream_index u64
//     tcp_seq u32 | tcp_end_seq u32 | epoch u32 | has_tcp_seq u8
//     payload_len u32 | payload bytes
//   fingerprint_count u32
//   per fingerprint: fp u64 | packet_id u64 | offset u16
#pragma once

#include <optional>

#include "cache/byte_cache.h"
#include "util/bytes.h"

namespace bytecache::cache {

/// Snapshots the cache contents (not its statistics).
[[nodiscard]] util::Bytes serialize_cache(const ByteCache& cache);

/// Restores a snapshot into `cache`, replacing its current contents.
/// Returns false (leaving the cache flushed) on malformed input.
bool deserialize_cache(util::BytesView snapshot, ByteCache& cache);

}  // namespace bytecache::cache
