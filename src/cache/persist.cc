#include "cache/persist.h"

namespace bytecache::cache {
namespace {

constexpr std::uint32_t kMagic = 0x42434331;  // "BCC1"

}  // namespace

util::Bytes serialize_cache(const ByteCache& cache) {
  util::Bytes out;
  util::put_u32(out, kMagic);
  util::put_u32(out, static_cast<std::uint32_t>(cache.store().size()));
  for (const CachedPacket& p : cache.store().entries()) {
    util::put_u64(out, p.id);
    util::put_u64(out, p.meta.flow_key);
    util::put_u64(out, p.meta.src_uid);
    util::put_u64(out, p.meta.stream_index);
    util::put_u32(out, p.meta.tcp_seq);
    util::put_u32(out, p.meta.tcp_end_seq);
    util::put_u32(out, p.meta.epoch);
    util::put_u8(out, p.meta.has_tcp_seq ? 1 : 0);
    util::put_u32(out, static_cast<std::uint32_t>(p.payload.size()));
    util::append(out, p.payload);
  }
  util::put_u32(out, static_cast<std::uint32_t>(cache.table().size()));
  cache.table().for_each([&](rabin::Fingerprint fp, const FpEntry& entry) {
    util::put_u64(out, fp);
    util::put_u64(out, entry.packet_id);
    util::put_u16(out, entry.offset);
  });
  return out;
}

bool deserialize_cache(util::BytesView snapshot, ByteCache& cache) {
  cache.flush();
  std::size_t off = 0;
  auto have = [&](std::size_t n) { return snapshot.size() - off >= n; };
  if (!have(8) || util::get_u32(snapshot, off) != kMagic) return false;
  const std::uint32_t packets = util::get_u32(snapshot, off);
  for (std::uint32_t i = 0; i < packets; ++i) {
    if (!have(8 * 4 + 4 * 3 + 1 + 4)) {
      cache.flush();
      return false;
    }
    const std::uint64_t id = util::get_u64(snapshot, off);
    PacketMeta meta;
    meta.flow_key = util::get_u64(snapshot, off);
    meta.src_uid = util::get_u64(snapshot, off);
    meta.stream_index = util::get_u64(snapshot, off);
    meta.tcp_seq = util::get_u32(snapshot, off);
    meta.tcp_end_seq = util::get_u32(snapshot, off);
    meta.epoch = util::get_u32(snapshot, off);
    meta.has_tcp_seq = util::get_u8(snapshot, off) != 0;
    const std::uint32_t len = util::get_u32(snapshot, off);
    if (!have(len)) {
      cache.flush();
      return false;
    }
    // PacketStore::restore trusts its input: a zero or duplicate id would
    // corrupt the id index, so reject the snapshot instead.
    if (id == 0 || cache.store().contains(id)) {
      cache.flush();
      return false;
    }
    // The payload is copied straight from the snapshot into the store's
    // arena — no intermediate owning buffer.
    cache.restore_packet(id, snapshot.subspan(off, len), meta);
    off += len;
  }
  if (!have(4)) {
    cache.flush();
    return false;
  }
  const std::uint32_t fps = util::get_u32(snapshot, off);
  for (std::uint32_t i = 0; i < fps; ++i) {
    if (!have(8 + 8 + 2)) {
      cache.flush();
      return false;
    }
    const rabin::Fingerprint fp = util::get_u64(snapshot, off);
    FpEntry entry;
    entry.packet_id = util::get_u64(snapshot, off);
    entry.offset = util::get_u16(snapshot, off);
    // A fingerprint naming an absent packet (or a window starting past
    // the owner's payload) breaks the table invariants that audit() and
    // the hit-expansion path rely on; a corrupted or truncated snapshot
    // must come back empty, not subtly wrong.
    const CachedPacket* owner = cache.store().peek(entry.packet_id);
    if (owner == nullptr || entry.offset >= owner->payload.size()) {
      cache.flush();
      return false;
    }
    cache.restore_fingerprint(fp, entry);
  }
  if (off != snapshot.size()) {
    // Trailing garbage: reject fully — a failed restore must leave the
    // cache empty, never partially populated.
    cache.flush();
    return false;
  }
  return true;
}

}  // namespace bytecache::cache
