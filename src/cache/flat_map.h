// Open-addressing hash map with 64-bit keys, shared by the data-plane
// cache structures (FingerprintTable, PacketStore's id index).
//
// Why not std::unordered_map: the node-based layout costs one allocation
// per insert and a pointer chase per probe — both on the encoder's
// per-packet path.  This table stores slots contiguously, probes
// linearly from a mixed hash (the keys are Rabin fingerprints whose low
// `select_bits` bits are zero by construction, so the raw value must
// never be used as an index), and deletes by backward shifting instead
// of tombstones, so lookup cost never degrades with churn.  Capacity is
// a power of two; the load factor is kept at or below 3/4.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bytecache::cache {

/// Murmur3-style 64-bit finalizer: full-avalanche, so clustered or
/// low-bit-zero keys spread uniformly over the slot array.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() { rehash(kMinCapacity); }

  /// Pre-sizes the table so `n` entries fit without growing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 / 4 < n) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Inserts or overwrites the value for `key`.
  void put(std::uint64_t key, const V& value) {
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    std::size_t i = mix64(key) & mask_;
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].value = value;
    slots_[i].used = 1;
    ++size_;
  }

  /// Pointer to the value for `key`, or nullptr if absent.  Stable only
  /// until the next put/erase.
  [[nodiscard]] const V* find(std::uint64_t key) const {
    std::size_t i = mix64(key) & mask_;
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] V* find(std::uint64_t key) {
    return const_cast<V*>(static_cast<const FlatMap64*>(this)->find(key));
  }

  /// Hints the cache to pull `key`'s home slot: a later find(key) probes
  /// that slot first, so issuing this d keys ahead hides the slot-array
  /// miss behind useful work (the batched probe path, see
  /// FingerprintTable::probe_batch).  Collision chains may still touch
  /// cold neighbours; the home slot dominates at our <= 3/4 load factor.
  void prefetch(std::uint64_t key) const {
    __builtin_prefetch(&slots_[mix64(key) & mask_], /*rw=*/0, /*locality=*/1);
  }

  /// Removes `key` if present; backward-shifts the probe chain so no
  /// tombstone is left behind.  Returns true if an entry was removed.
  bool erase(std::uint64_t key) {
    std::size_t i = mix64(key) & mask_;
    while (true) {
      if (!slots_[i].used) return false;
      if (slots_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    // Knuth Vol. 3, 6.4 Algorithm R: refill the hole with any later
    // element of the probe chain whose home slot does not lie cyclically
    // inside (i, j], repeating until a gap terminates the chain.
    std::size_t j = i;
    while (true) {
      slots_[i].used = 0;
      while (true) {
        j = (j + 1) & mask_;
        if (!slots_[j].used) {
          --size_;
          return true;
        }
        const std::size_t home = mix64(slots_[j].key) & mask_;
        const bool reachable = i <= j ? (home <= i || home > j)
                                      : (home <= i && home > j);
        if (reachable) break;
      }
      slots_[i] = slots_[j];
      i = j;
    }
  }

  void clear() {
    for (Slot& s : slots_) s.used = 0;
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    std::uint64_t key = 0;
    V value{};
    std::uint8_t used = 0;
  };

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.used) put(s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace bytecache::cache
