#include "cache/l2_store.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace bytecache::cache {

// ---------------------------------------------------------------- Stripe

L2Store::Stripe::Stripe(const CacheConfig& config, std::size_t share_bytes)
    : config_(config), share_(share_bytes) {
  // Same densities as the L1 (ByteCache): about one owned fingerprint per
  // 16 payload bytes, and at least one packet per minimum arena slice —
  // pre-sized so steady-state demotion churn never rehashes.
  fp_index_.reserve(share_ / 16);
  id_index_.reserve(share_ / SliceArena::kMinSlice);
}

std::uint32_t L2Store::Stripe::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void L2Store::Stripe::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  // The slice is parked, not freed: payload views handed out this packet
  // (match expansion, promotion copy) stay readable until end_packet().
  limbo_.push_back(s.slice);
  s.slice = SliceArena::Slice{};
  s.pkt.payload = PayloadView{};
  s.pkt.fps.clear();  // keeps heap capacity for the next occupant
  s.pkt.id = 0;
  s.pkt.meta = PacketMeta{};
  s.hit_count = 0;
  s.promote_pending = false;
  s.live = false;
  free_.push_back(slot);
}

void L2Store::Stripe::link_front(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.prev = kNil;
  s.next = head_;
  if (head_ != kNil) slots_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void L2Store::Stripe::link_back(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.next = kNil;
  s.prev = tail_;
  if (tail_ != kNil) slots_[tail_].next = slot;
  tail_ = slot;
  if (head_ == kNil) head_ = slot;
}

void L2Store::Stripe::unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.prev != kNil) slots_[s.prev].next = s.next;
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  if (head_ == slot) head_ = s.next;
  if (tail_ == slot) tail_ = s.prev;
  s.prev = s.next = kNil;
}

void L2Store::Stripe::host_link_front(std::uint32_t slot) {
  Slot& s = slots_[slot];
  HostEntry* e = hosts_.obtain(s.pkt.meta.host_key);
  s.host_prev = kNil;
  s.host_next = e->head;
  if (e->head != kNil) slots_[e->head].host_prev = slot;
  e->head = slot;
  if (e->tail == kNil) e->tail = slot;
}

void L2Store::Stripe::host_link_back(std::uint32_t slot) {
  Slot& s = slots_[slot];
  HostEntry* e = hosts_.obtain(s.pkt.meta.host_key);
  s.host_next = kNil;
  s.host_prev = e->tail;
  if (e->tail != kNil) slots_[e->tail].host_next = slot;
  e->tail = slot;
  if (e->head == kNil) e->head = slot;
}

void L2Store::Stripe::host_unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  HostEntry* e = hosts_.find(s.pkt.meta.host_key);
  BC_CHECK(e != nullptr) << "slot " << slot << " chained under host key "
                         << s.pkt.meta.host_key << " the ledger lost";
  if (s.host_prev != kNil) slots_[s.host_prev].host_next = s.host_next;
  if (s.host_next != kNil) slots_[s.host_next].host_prev = s.host_prev;
  if (e->head == slot) e->head = s.host_next;
  if (e->tail == slot) e->tail = s.host_prev;
  s.host_prev = s.host_next = kNil;
}

void L2Store::Stripe::touch(std::uint32_t slot) {
  if (head_ != slot) {
    unlink(slot);
    link_front(slot);
  }
  const HostEntry* e = hosts_.find(slots_[slot].pkt.meta.host_key);
  if (e != nullptr && e->head != slot) {
    host_unlink(slot);
    host_link_front(slot);
  }
}

std::size_t L2Store::Stripe::evict_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::uint64_t id = s.pkt.id;
  std::size_t purged = 0;
  // Purge only entries the packet still owns: a later demotion may have
  // overwritten some (the L1's overwrite semantics, mirrored here).
  for (rabin::Fingerprint fp : s.pkt.fps) {
    const FpEntry* e = fp_index_.find(fp);
    if (e != nullptr && e->packet_id == id) {
      fp_index_.erase(fp);
      ++purged;
    }
  }
  bytes_used_ -= s.pkt.payload.size();
  unlink(slot);
  // Host accounting must run while the slot's meta/payload are intact.
  const std::uint64_t key = s.pkt.meta.host_key;
  const std::size_t len = s.pkt.payload.size();
  host_unlink(slot);
  HostEntry* he = hosts_.find(key);
  BC_CHECK(he != nullptr && he->bytes >= len)
      << "host ledger under-accounts pair " << key;
  he->bytes -= len;
  hosts_.release_if_idle(key);
  id_index_.erase(id);
  retire_slot(slot);
  return purged;
}

std::uint32_t L2Store::Stripe::pick_victim() {
  if (config_.eviction == EvictionPolicy::kLru) return tail_;
  // kZipfAware: give recently *hit* packets a second chance — scan a
  // bounded window from the cold end, evicting the first zero-hit packet
  // (or the least-hit one in the window), and halve the counts we skip so
  // a once-hot packet cannot pin its slot forever.  The scan depends only
  // on cache state, so encoder and decoder pick identical victims.
  std::uint32_t best = tail_;
  std::uint32_t best_count = 0xFFFFFFFFu;
  std::uint32_t scanned = 0;
  for (std::uint32_t s = tail_; s != kNil && scanned < kZipfScan;
       ++scanned) {
    const std::uint32_t prev = slots_[s].prev;
    const std::uint32_t c = slots_[s].hit_count;
    if (c == 0) return s;
    if (c < best_count) {
      best_count = c;
      best = s;
    }
    slots_[s].hit_count = c >> 1;
    s = prev;
  }
  return best;
}

std::optional<CacheHit> L2Store::Stripe::find(rabin::Fingerprint fp,
                                              bool& enqueue_promotion) {
  enqueue_promotion = false;
  const FpEntry* e = fp_index_.find(fp);
  if (e == nullptr) return std::nullopt;
  const std::uint16_t offset = e->offset;
  const std::uint32_t* slotp = id_index_.find(e->packet_id);
  // The eviction purge keeps the index free of stale entries (audit), so
  // an orphaned entry is corruption, not a miss.
  BC_CHECK(slotp != nullptr)
      << "L2 index entry for fingerprint " << fp << " names absent packet "
      << e->packet_id;
  const std::uint32_t slot = *slotp;
  touch(slot);
  Slot& s = slots_[slot];
  if (s.hit_count != 0xFFFFFFFFu) ++s.hit_count;
  if (!s.promote_pending) {
    s.promote_pending = true;
    enqueue_promotion = true;
  }
  ++stats_.l2_hits;
  return CacheHit{&s.pkt, offset};
}

void L2Store::Stripe::admit(const CachedPacket& pkt,
                            std::span<const DemotedFp> owned) {
  ++stats_.demotions;
  const std::size_t len = pkt.payload.size();
  // A packet larger than the stripe share would be evicted again at the
  // next epoch boundary; rejecting it outright spares warmer entries.
  if (len > share_) {
    ++stats_.demotions_rejected;
    return;
  }
  const std::uint64_t host = pkt.meta.host_key;
  if (config_.per_host_pair_bytes > 0) {
    if (len > config_.per_host_pair_bytes) {
      ++stats_.demotions_rejected;
      return;
    }
    // Over-budget pairs evict their OWN coldest packets — never a
    // neighbour's — so one elephant pair cannot churn out the mice.
    while (true) {
      HostEntry* e = hosts_.find(host);
      if (e == nullptr || e->bytes + len <= config_.per_host_pair_bytes) {
        break;
      }
      BC_CHECK(e->tail != kNil)
          << "pair " << host << " holds " << e->bytes
          << " bytes but chains no packets";
      ++e->evictions;
      const std::size_t purged = evict_slot(e->tail);
      stats_.l2_fingerprints_purged += purged;
      ++stats_.host_evictions;
    }
  }
  BC_CHECK(id_index_.find(pkt.id) == nullptr)
      << "demoted packet " << pkt.id << " is already L2-resident";
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.pkt.id = pkt.id;
  s.slice = arena_.alloc(len);
  if (len != 0) std::memcpy(s.slice.data, pkt.payload.data(), len);
  s.pkt.payload = PayloadView{s.slice.data, len};
  s.pkt.meta = pkt.meta;
  // Record only the owned fingerprints: the rest of the packet's anchor
  // set belongs to newer L1 packets and never enters the L2 index.
  s.pkt.fps.clear();
  s.pkt.fps.reserve(owned.size());
  for (const DemotedFp& o : owned) s.pkt.fps.push_back(o.fp);
  s.live = true;
  bytes_used_ += len;
  link_front(slot);
  host_link_front(slot);
  hosts_.find(host)->bytes += len;
  id_index_.put(pkt.id, slot);
  for (const DemotedFp& o : owned) {
    fp_index_.put(o.fp, FpEntry{pkt.id, o.offset});
  }
  // NOTE: the stripe may now exceed its share; enforcement is deferred to
  // end_packet() so nothing this packet referenced is freed under it.
}

bool L2Store::Stripe::take(std::uint64_t id, Taken& out,
                           std::vector<DemotedFp>& owned_out) {
  const std::uint32_t* slotp = id_index_.find(id);
  if (slotp == nullptr) return false;
  const std::uint32_t slot = *slotp;
  Slot& s = slots_[slot];
  for (rabin::Fingerprint fp : s.pkt.fps) {
    const FpEntry* e = fp_index_.find(fp);
    if (e != nullptr && e->packet_id == id) {
      owned_out.push_back(DemotedFp{fp, e->offset});
      fp_index_.erase(fp);
    }
  }
  out.payload = s.pkt.payload;  // backed by the limbo'd slice
  out.meta = s.pkt.meta;
  out.fps = std::move(s.pkt.fps);
  bytes_used_ -= s.pkt.payload.size();
  unlink(slot);
  const std::uint64_t key = s.pkt.meta.host_key;
  const std::size_t len = s.pkt.payload.size();
  host_unlink(slot);
  HostEntry* he = hosts_.find(key);
  BC_CHECK(he != nullptr && he->bytes >= len)
      << "host ledger under-accounts pair " << key;
  he->bytes -= len;
  hosts_.release_if_idle(key);
  id_index_.erase(id);
  retire_slot(slot);
  return true;
}

void L2Store::Stripe::unindex(std::span<const rabin::Anchor> anchors) {
  for (const rabin::Anchor& a : anchors) {
    fp_index_.erase(a.fp);
  }
}

bool L2Store::Stripe::invalidate(rabin::Fingerprint fp) {
  const FpEntry* e = fp_index_.find(fp);
  if (e == nullptr) return false;
  const std::uint32_t* slotp = id_index_.find(e->packet_id);
  BC_CHECK(slotp != nullptr)
      << "L2 index entry for fingerprint " << fp << " names absent packet "
      << e->packet_id;
  stats_.l2_fingerprints_purged += evict_slot(*slotp);
  return true;
}

void L2Store::Stripe::end_packet() {
  // Never evicts the sole resident (admit() already bounds any single
  // packet by the share, so the loop terminates regardless).
  while (bytes_used_ > share_ && head_ != tail_) {
    stats_.l2_fingerprints_purged += evict_slot(pick_victim());
    ++stats_.l2_evictions;
  }
  for (const SliceArena::Slice& s : limbo_) arena_.free(s);
  limbo_.clear();
}

void L2Store::Stripe::clear() {
  for (std::uint32_t s = head_; s != kNil;) {
    const std::uint32_t next = slots_[s].next;
    Slot& slot = slots_[s];
    arena_.free(slot.slice);
    slot.slice = SliceArena::Slice{};
    slot.pkt.payload = PayloadView{};
    slot.pkt.fps.clear();
    slot.pkt.id = 0;
    slot.pkt.meta = PacketMeta{};
    slot.prev = slot.next = kNil;
    slot.host_prev = slot.host_next = kNil;
    slot.hit_count = 0;
    slot.promote_pending = false;
    slot.live = false;
    free_.push_back(s);
    s = next;
  }
  head_ = tail_ = kNil;
  id_index_.clear();
  fp_index_.clear();
  hosts_.clear();
  bytes_used_ = 0;
  // A flush frees limbo immediately: no payload view survives a flush.
  for (const SliceArena::Slice& s : limbo_) arena_.free(s);
  limbo_.clear();
}

std::size_t L2Store::Stripe::host_bytes(std::uint64_t host_key) const {
  const HostEntry* e = hosts_.find(host_key);
  return e == nullptr ? 0 : e->bytes;
}

void L2Store::Stripe::save(SnapshotWriter& w) const {
  w.u32(kSnapMagicL2);
  w.u32(static_cast<std::uint32_t>(size()));
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    const Slot& slot = slots_[s];
    const CachedPacket& p = slot.pkt;
    w.u64(p.id);
    w.u64(p.meta.flow_key);
    w.u64(p.meta.src_uid);
    w.u64(p.meta.stream_index);
    w.u32(p.meta.tcp_seq);
    w.u32(p.meta.tcp_end_seq);
    w.u32(p.meta.epoch);
    w.u8(p.meta.has_tcp_seq ? 1 : 0);
    w.u64(p.meta.host_key);
    w.u32(slot.hit_count);
    w.u32(static_cast<std::uint32_t>(p.payload.size()));
    w.bytes(p.payload);
    // Two passes over the (short) fingerprint list instead of a scratch
    // buffer: count the entries the packet still owns, then emit them.
    std::uint32_t owned = 0;
    for (rabin::Fingerprint fp : p.fps) {
      const FpEntry* e = fp_index_.find(fp);
      if (e != nullptr && e->packet_id == p.id) ++owned;
    }
    w.u32(owned);
    for (rabin::Fingerprint fp : p.fps) {
      const FpEntry* e = fp_index_.find(fp);
      if (e != nullptr && e->packet_id == p.id) {
        w.u64(fp);
        w.u16(e->offset);
      }
    }
  }
}

bool L2Store::Stripe::load(SnapshotReader& r) {
  clear();
  auto reject = [&] {
    clear();
    r.fail();
    return false;
  };
  if (r.u32() != kSnapMagicL2 || !r.ok()) return reject();
  const std::uint32_t packets = r.u32();
  for (std::uint32_t i = 0; i < packets; ++i) {
    const std::uint64_t id = r.u64();
    PacketMeta meta;
    meta.flow_key = r.u64();
    meta.src_uid = r.u64();
    meta.stream_index = r.u64();
    meta.tcp_seq = r.u32();
    meta.tcp_end_seq = r.u32();
    meta.epoch = r.u32();
    meta.has_tcp_seq = r.u8() != 0;
    meta.host_key = r.u64();
    const std::uint32_t hit_count = r.u32();
    const std::uint32_t len = r.u32();
    const util::BytesView payload = r.bytes(len);
    if (!r.ok() || id == 0 || id_index_.find(id) != nullptr) {
      return reject();
    }
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.pkt.id = id;
    s.slice = arena_.alloc(len);
    if (len != 0) std::memcpy(s.slice.data, payload.data(), len);
    s.pkt.payload = PayloadView{s.slice.data, len};
    s.pkt.meta = meta;
    s.pkt.fps.clear();
    s.hit_count = hit_count;
    s.live = true;
    bytes_used_ += len;
    // Snapshots walk MRU to LRU, so appending at the cold end preserves
    // both the global and the per-host recency orders.
    link_back(slot);
    host_link_back(slot);
    hosts_.find(meta.host_key)->bytes += len;
    id_index_.put(id, slot);
    const std::uint32_t owned = r.u32();
    for (std::uint32_t f = 0; f < owned; ++f) {
      const rabin::Fingerprint fp = r.u64();
      const std::uint16_t offset = r.u16();
      // Two owners for one fingerprint (or a window starting past the
      // payload) can never arise from save(); reject the snapshot.
      if (!r.ok() || fp_index_.find(fp) != nullptr || offset >= len) {
        return reject();
      }
      s.pkt.fps.push_back(fp);
      fp_index_.put(fp, FpEntry{id, offset});
    }
  }
  if (!r.ok()) return reject();
  // A snapshot from a larger configuration may overflow this share (or
  // this pair budget): trim deterministically, exactly as the runtime
  // eviction would, without counting runtime movement statistics.
  if (config_.per_host_pair_bytes > 0) {
    for (std::uint32_t s = tail_; s != kNil;) {
      const std::uint32_t prev = slots_[s].prev;
      const HostEntry* e = hosts_.find(slots_[s].pkt.meta.host_key);
      if (e != nullptr && e->bytes > config_.per_host_pair_bytes) {
        evict_slot(s);
      }
      s = prev;
    }
  }
  while (bytes_used_ > share_ && head_ != tail_) {
    evict_slot(pick_victim());
  }
  // No payload view is outstanding during a restore; free limbo now.
  for (const SliceArena::Slice& s : limbo_) arena_.free(s);
  limbo_.clear();
  return true;
}

void L2Store::Stripe::audit() const {
  if (!util::kAuditEnabled) return;
  std::size_t bytes = 0;
  std::size_t entries = 0;
  std::size_t arena_slices = 0;
  std::uint32_t prev = kNil;
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    const Slot& slot = slots_[s];
    bytes += slot.pkt.payload.size();
    ++entries;
    BC_AUDIT(slot.live) << "L2 chain reaches freed slot " << s;
    BC_AUDIT(slot.prev == prev)
        << "L2 slot " << s << " back-link " << slot.prev
        << " does not match predecessor " << prev;
    BC_AUDIT(slot.pkt.payload.data() == slot.slice.data)
        << "L2 slot " << s << " payload view detached from its slice";
    if (slot.slice.data != nullptr &&
        slot.slice.cls != SliceArena::kHeapClass) {
      ++arena_slices;
    }
    BC_AUDIT(slot.pkt.id != 0) << "live L2 slot " << s << " holds id 0";
    const std::uint32_t* idx = id_index_.find(slot.pkt.id);
    BC_AUDIT(idx != nullptr && *idx == s)
        << "L2 id index disagrees with the chain for id " << slot.pkt.id;
    prev = s;
  }
  BC_AUDIT(tail_ == prev)
      << "L2 tail " << tail_ << " does not terminate the chain (" << prev
      << ")";
  BC_AUDIT(entries == id_index_.size())
      << "L2 chain has " << entries << " entries but the id index has "
      << id_index_.size();
  BC_AUDIT(entries + free_.size() == slots_.size())
      << entries << " live + " << free_.size() << " free slots != slab of "
      << slots_.size();
  BC_AUDIT(bytes == bytes_used_)
      << "L2 bytes_used_ " << bytes_used_ << " != sum of payload sizes "
      << bytes;
  BC_AUDIT(bytes_used_ <= share_ || entries <= 1)
      << "stripe share " << share_ << " exceeded between packets: "
      << bytes_used_ << " bytes";
  // Per-host accounting: every chain partitions the live slots, each
  // pair's bytes match its chained payloads, and budgets hold.
  std::size_t host_bytes_total = 0;
  std::size_t host_entries_total = 0;
  hosts_.for_each([&](std::uint64_t key, const HostEntry& e) {
    std::size_t pair_bytes = 0;
    std::uint32_t hprev = kNil;
    for (std::uint32_t s = e.head; s != kNil; s = slots_[s].host_next) {
      const Slot& slot = slots_[s];
      BC_AUDIT(slot.live) << "host chain of pair " << key
                          << " reaches freed slot " << s;
      BC_AUDIT(slot.pkt.meta.host_key == key)
          << "slot " << s << " chained under pair " << key
          << " but attributed to " << slot.pkt.meta.host_key;
      BC_AUDIT(slot.host_prev == hprev)
          << "host back-link broken at slot " << s;
      pair_bytes += slot.pkt.payload.size();
      ++host_entries_total;
      hprev = s;
    }
    BC_AUDIT(e.tail == hprev)
        << "host tail of pair " << key << " does not terminate its chain";
    BC_AUDIT(pair_bytes == e.bytes)
        << "pair " << key << " ledger says " << e.bytes
        << " bytes but chains " << pair_bytes;
    BC_AUDIT(e.bytes > 0 || e.head != kNil)
        << "idle pair " << key << " was not released";
    BC_AUDIT(config_.per_host_pair_bytes == 0 ||
             e.bytes <= config_.per_host_pair_bytes)
        << "pair " << key << " holds " << e.bytes
        << " bytes over its budget " << config_.per_host_pair_bytes;
    host_bytes_total += e.bytes;
  });
  BC_AUDIT(host_entries_total == entries)
      << "host chains cover " << host_entries_total << " slots, not "
      << entries;
  BC_AUDIT(host_bytes_total == bytes_used_)
      << "host ledgers account " << host_bytes_total << " of "
      << bytes_used_ << " bytes";
  // The L2 extension of the PR-2 purge invariant: zero stale entries —
  // every index entry resolves to a live packet that recorded it.
  fp_index_.for_each([&](std::uint64_t fp, const FpEntry& e) {
    const std::uint32_t* slotp = id_index_.find(e.packet_id);
    BC_AUDIT(slotp != nullptr)
        << "stale L2 index entry: fingerprint " << fp
        << " names evicted packet " << e.packet_id;
    if (slotp == nullptr) return;
    const Slot& slot = slots_[*slotp];
    BC_AUDIT(e.offset < slot.pkt.payload.size())
        << "L2 entry for fingerprint " << fp << " starts at " << e.offset
        << ", past the " << slot.pkt.payload.size() << "-byte payload";
    BC_AUDIT(std::find(slot.pkt.fps.begin(), slot.pkt.fps.end(), fp) !=
             slot.pkt.fps.end())
        << "L2 entry for fingerprint " << fp
        << " is not recorded on its owner " << e.packet_id;
  });
  BC_AUDIT(limbo_.empty())
      << limbo_.size() << " limbo slices survived the epoch boundary";
  arena_.audit();
  BC_AUDIT(arena_.live() == arena_slices)
      << "L2 arena reports " << arena_.live() << " live slices but "
      << arena_slices << " live entries hold one";
}

// --------------------------------------------------------------- L2Store

L2Store::L2Store(const CacheConfig& config, std::size_t stripes)
    : config_(config) {
  BC_CHECK(stripes >= 1) << "L2Store needs at least one stripe";
  BC_CHECK(config.l2_bytes > 0) << "L2Store constructed with no L2 budget";
  const std::size_t share =
      std::max<std::size_t>(std::size_t{1}, config.l2_bytes / stripes);
  // Every stripe is built up front (construction is cold); attach() hands
  // them out without allocating.
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>(config, share));
  }
}

L2Store::Stripe* L2Store::attach() {
  BC_CHECK(attached_ < stripes_.size())
      << "more codecs attached than the store's " << stripes_.size()
      << " stripes";
  return stripes_[attached_++].get();
}

std::size_t L2Store::bytes_used() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s->bytes_used();
  return total;
}

std::size_t L2Store::packets() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s->size();
  return total;
}

std::size_t L2Store::host_pairs() const {
  std::size_t total = 0;
  for (const auto& s : stripes_) total += s->hosts().pairs();
  return total;
}

}  // namespace bytecache::cache
