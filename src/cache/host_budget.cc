#include "cache/host_budget.h"

namespace bytecache::cache {

HostEntry* HostLedger::obtain(std::uint64_t host_key) {
  if (HostEntry* e = map_.find(host_key)) return e;
  map_.put(host_key, HostEntry{});
  return map_.find(host_key);
}

void HostLedger::release_if_idle(std::uint64_t host_key) {
  const HostEntry* e = map_.find(host_key);
  if (e != nullptr && e->bytes == 0 && e->head == kNil) {
    map_.erase(host_key);
  }
}

}  // namespace bytecache::cache
