#include "cache/slice_arena.h"

#include <bit>
#include <cstdlib>
#include <new>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "util/check.h"

namespace bytecache::cache {

SliceArena::TestHooks SliceArena::test_hooks;

SliceArena::~SliceArena() {
  for (const Area& a : areas_) {
    std::free(a.base);
    ++test_hooks.areas_freed;
  }
}

std::uint8_t SliceArena::class_of(std::size_t n) {
  BC_CHECK(n > 0 && n <= kMaxSlice)
      << "no size class for " << n << " bytes";
  const std::size_t needed = n < kMinSlice ? kMinSlice : std::bit_ceil(n);
  return static_cast<std::uint8_t>(
      std::countr_zero(needed / kMinSlice));
}

void SliceArena::grow_bookkeeping() {
  if (test_hooks.fail_bookkeeping > 0 &&
      --test_hooks.fail_bookkeeping == 0) {
    throw std::bad_alloc();
  }
  areas_.reserve(areas_.size() + 1);
}

void SliceArena::carve_area(std::uint8_t cls) {
  // Bookkeeping first: if the vector growth throws here, nothing has
  // been allocated yet.  The former order — aligned_alloc, then a
  // possibly-throwing push_back — leaked the fresh area on growth
  // failure, because ~SliceArena only frees *recorded* areas.
  grow_bookkeeping();
  void* mem = std::aligned_alloc(kAreaBytes, kAreaBytes);
  if (mem == nullptr) throw std::bad_alloc();
  ++test_hooks.areas_allocated;
#ifdef __linux__
  // Advisory: a kernel without THP support just ignores it.
  (void)madvise(mem, kAreaBytes, MADV_HUGEPAGE);
#endif
  // Cannot throw: capacity was reserved above.
  areas_.push_back(Area{static_cast<std::uint8_t*>(mem), cls});
  const std::size_t size = class_size(cls);
  const std::size_t count = kAreaBytes / size;
  auto* base = static_cast<std::uint8_t*>(mem);
  // Push in reverse so the freelist pops slices in address order — the
  // first allocations after a carve walk the area sequentially, which is
  // the friendliest pattern for the huge-page fault-in.
  for (std::size_t i = count; i-- > 0;) {
    auto* fs = reinterpret_cast<FreeSlice*>(base + i * size);
    fs->next = free_lists_[cls];
    free_lists_[cls] = fs;
  }
  carved_ += count;
}

SliceArena::Slice SliceArena::alloc(std::size_t n) {
  if (n == 0) return Slice{};
  if (n > kMaxSlice) {
    // Oversize fallback, cold by construction: the codec never caches a
    // payload past its 16-bit wire limit, so only direct PacketStore
    // users (tests) reach this.  NOLINT(bc-hotpath-alloc)
    return Slice{new std::uint8_t[n], kHeapClass};
  }
  const std::uint8_t cls = class_of(n);
  if (free_lists_[cls] == nullptr) carve_area(cls);
  FreeSlice* fs = free_lists_[cls];
  free_lists_[cls] = fs->next;
  ++live_;
  return Slice{reinterpret_cast<std::uint8_t*>(fs), cls};
}

void SliceArena::free(Slice s) {
  if (s.data == nullptr) return;
  if (s.cls == kHeapClass) {
    delete[] s.data;
    return;
  }
  BC_CHECK(s.cls < kClasses) << "freeing slice of unknown class "
                             << static_cast<int>(s.cls);
  auto* fs = reinterpret_cast<FreeSlice*>(s.data);
  fs->next = free_lists_[s.cls];
  free_lists_[s.cls] = fs;
  --live_;
}

void SliceArena::audit() const {
  if (!util::kAuditEnabled) return;
  std::size_t free_count = 0;
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    const std::size_t size = class_size(static_cast<std::uint8_t>(cls));
    for (const FreeSlice* fs = free_lists_[cls]; fs != nullptr;
         fs = fs->next) {
      ++free_count;
      BC_AUDIT(free_count <= carved_)
          << "freelist longer than " << carved_
          << " carved slices (cycle?)";
      if (free_count > carved_) return;  // do not chase the cycle
      const auto* p = reinterpret_cast<const std::uint8_t*>(fs);
      bool inside = false;
      for (const Area& a : areas_) {
        if (a.cls != cls) continue;
        if (p >= a.base && p < a.base + kAreaBytes) {
          inside = true;
          BC_AUDIT((static_cast<std::size_t>(p - a.base) % size) == 0)
              << "freelist entry misaligned within its area";
          break;
        }
      }
      BC_AUDIT(inside) << "freelist entry of class " << cls
                       << " points outside every area of that class";
    }
  }
  BC_AUDIT(live_ + free_count == carved_)
      << live_ << " live + " << free_count << " free slices != "
      << carved_ << " carved";
}

}  // namespace bytecache::cache
