#include "cache/cache_tier.h"

#include "util/check.h"
#include "util/crc32.h"

namespace bytecache::cache {

CacheTier::CacheTier(const CacheConfig& config, L2Store* l2)
    : l1_(config), config_(config) {
  if (l2 != nullptr) {
    BC_CHECK(l2->config().l2_bytes == config.l2_bytes &&
             l2->config().per_host_pair_bytes == config.per_host_pair_bytes)
        << "CacheTier and its L2Store were built from different configs";
    stripe_ = l2->attach();
    l1_.set_demote_sink(this);
  }
}

void CacheTier::on_demote(const CachedPacket& pkt,
                          std::span<const DemotedFp> owned) {
  stripe_->admit(pkt, owned);
}

void CacheTier::apply_promotions() {
  for (std::uint64_t id : promote_queue_) {
    owned_scratch_.clear();
    // The packet can have left the stripe since the hit (host-budget or
    // share eviction triggered by a later demotion): nothing to promote.
    if (!stripe_->take(id, taken_, owned_scratch_)) continue;
    l1_.readmit(id, taken_.payload, taken_.meta, taken_.fps,
                owned_scratch_);
    ++stripe_->stats().promotions;
  }
  promote_queue_.clear();
}

std::uint64_t CacheTier::update(util::BytesView payload,
                                const std::vector<rabin::Anchor>& anchors,
                                const PacketMeta& meta) {
  // Promotions first: the hits happened before this packet arrived, so
  // the promoted entries slot in just below it in recency — and their
  // demotion fallout lands before the fresh insert, keeping the insert's
  // own eviction decisions identical on both sides of the link.
  if (stripe_ != nullptr && !promote_queue_.empty()) apply_promotions();
  journal_update(payload, anchors, meta);
  const std::uint64_t id = l1_.update(payload, anchors, meta);
  if (stripe_ != nullptr) {
    // Ownership of these fingerprints moved to the packet just inserted
    // into the L1: whatever the L2 index held for them is now stale.
    // This is the step that keeps every fingerprint resolvable in
    // exactly one tier (see audit()).
    stripe_->unindex(anchors);
    // Epoch boundary: enforce the stripe share and free limbo slices —
    // nothing handed out during this packet is referenced past here.
    stripe_->end_packet();
  }
  return id;
}

std::optional<CacheHit> CacheTier::find(rabin::Fingerprint fp) {
  auto hit = l1_.find(fp);
  if (hit.has_value() || stripe_ == nullptr) return hit;
  bool enqueue = false;
  auto l2 = stripe_->find(fp, enqueue);
  if (l2.has_value() && enqueue) {
    promote_queue_.push_back(l2->packet->id);
  }
  return l2;
}

std::optional<CacheHit> CacheTier::resolve(rabin::Fingerprint fp,
                                           const ProbeResult& probe) {
  auto hit = l1_.resolve(fp, probe);
  if (hit.has_value() || stripe_ == nullptr) return hit;
  bool enqueue = false;
  auto l2 = stripe_->find(fp, enqueue);
  if (l2.has_value() && enqueue) {
    promote_queue_.push_back(l2->packet->id);
  }
  return l2;
}

void CacheTier::flush() {
  journal_op(kOpFlush, 0);
  l1_.flush();
  if (stripe_ != nullptr) {
    stripe_->clear();
    promote_queue_.clear();
  }
}

bool CacheTier::invalidate(rabin::Fingerprint fp) {
  journal_op(kOpInvalidate, fp);
  if (l1_.invalidate(fp)) return true;
  if (stripe_ == nullptr || !stripe_->invalidate(fp)) return false;
  // Invalidation is control-plane work between packets: no payload
  // pointer from a match loop is live, so the victim's slice need not
  // wait in limbo for the next update()'s epoch boundary.
  stripe_->end_packet();
  return true;
}

void CacheTier::audit() const {
  l1_.audit();
  if (stripe_ == nullptr) return;
  stripe_->audit();
  if (!util::kAuditEnabled) return;
  // Cross-tier exclusivity: update() unindexes freshly owned
  // fingerprints from the L2 and promotion/demotion move a packet
  // wholesale, so no fingerprint or packet id may appear in both tiers.
  stripe_->for_each_fingerprint([&](std::uint64_t fp, const FpEntry& e) {
    BC_AUDIT(!l1_.has_fingerprint(fp))
        << "fingerprint " << fp << " indexed in both tiers (L2 owner "
        << e.packet_id << ")";
  });
  for (const CachedPacket& p : l1_.store().entries()) {
    BC_AUDIT(!stripe_->contains(p.id))
        << "packet " << p.id << " resident in both tiers";
  }
}

const TierStats& CacheTier::tier_stats() const {
  static const TierStats kNone{};
  return stripe_ != nullptr ? stripe_->stats() : kNone;
}

// ------------------------------------------------------------ snapshots

void CacheTier::save(SnapshotWriter& w) {
  if (stripe_ == nullptr && config_.snapshot_mode == SnapshotMode::kFull) {
    // Byte-identical to the pre-tier persist format for the default
    // configuration — old snapshots and their goldens stay valid.
    l1_.save(w);
  } else {
    ++seq_;
    w.u32(kSnapMagicTier);
    w.u64(seq_);
    l1_.save(w);
    // Host attribution rides out of band so the embedded flat block
    // stays byte-identical to the legacy format.
    std::uint32_t patched = 0;
    for (const CachedPacket& p : l1_.store().entries()) {
      if (p.meta.host_key != 0) ++patched;
    }
    w.u32(patched);
    for (const CachedPacket& p : l1_.store().entries()) {
      if (p.meta.host_key != 0) {
        w.u64(p.id);
        w.u64(p.meta.host_key);
      }
    }
    w.u8(stripe_ != nullptr ? 1 : 0);
    if (stripe_ != nullptr) stripe_->save(w);
  }
  journal_reset();
  journal_overflow_ = config_.snapshot_mode != SnapshotMode::kIncremental;
}

void CacheTier::save_incremental(SnapshotWriter& w) {
  if (config_.snapshot_mode != SnapshotMode::kIncremental ||
      journal_overflow_) {
    // No usable journal window (kFull mode, overflow, or no boundary
    // yet): emit a full image; load() sniffs the magic either way.
    save(w);
    return;
  }
  w.u32(kSnapMagicIncr);
  w.u64(seq_);  // the state version this delta chains on
  w.u32(journal_ops_);
  w.u32(static_cast<std::uint32_t>(journal_.size()));
  w.bytes(journal_.buffer());
  w.u32(util::crc32(journal_.buffer()));
  ++seq_;
  journal_reset();
}

bool CacheTier::reject(SnapshotReader& r) {
  l1_.flush();
  if (stripe_ != nullptr) stripe_->clear();
  promote_queue_.clear();
  journal_reset();
  journal_overflow_ = true;
  seq_ = 0;
  r.fail();
  return false;
}

bool CacheTier::load(SnapshotReader& r) {
  switch (r.peek_u32()) {
    case kSnapMagicFlat:
      return load_flat(r);
    case kSnapMagicTier:
      return load_tier(r);
    case kSnapMagicIncr:
      return load_incremental(r);
    default:
      return reject(r);
  }
}

bool CacheTier::load_flat(SnapshotReader& r) {
  if (!l1_.load(r)) return reject(r);
  // A flat snapshot is the complete state: whatever the stripe held is
  // gone, and legacy snapshots carry no state version.
  if (stripe_ != nullptr) stripe_->clear();
  promote_queue_.clear();
  seq_ = 0;
  journal_reset();
  journal_overflow_ = config_.snapshot_mode != SnapshotMode::kIncremental;
  return true;
}

bool CacheTier::load_tier(SnapshotReader& r) {
  (void)r.u32();  // magic, already sniffed
  const std::uint64_t seq = r.u64();
  if (!r.ok()) return reject(r);
  if (!l1_.load(r)) return reject(r);
  const std::uint32_t patched = r.u32();
  for (std::uint32_t i = 0; i < patched; ++i) {
    const std::uint64_t id = r.u64();
    const std::uint64_t host_key = r.u64();
    // A patch naming an absent packet cannot come from save().
    if (!r.ok() || !l1_.store().contains(id)) return reject(r);
    l1_.set_host_key(id, host_key);
  }
  const std::uint8_t has_l2 = r.u8();
  if (!r.ok() || has_l2 > 1) return reject(r);
  if (has_l2 != 0) {
    // An L2 image needs a stripe to live in; restoring it into an
    // L2-less tier would silently drop cache contents.
    if (stripe_ == nullptr) return reject(r);
    if (!stripe_->load(r)) return reject(r);
  } else if (stripe_ != nullptr) {
    stripe_->clear();
  }
  promote_queue_.clear();
  seq_ = seq;
  journal_reset();
  journal_overflow_ = config_.snapshot_mode != SnapshotMode::kIncremental;
  return true;
}

bool CacheTier::load_incremental(SnapshotReader& r) {
  (void)r.u32();  // magic, already sniffed
  const std::uint64_t base = r.u64();
  const std::uint32_t ops = r.u32();
  const std::uint32_t len = r.u32();
  const util::BytesView body = r.bytes(len);
  const std::uint32_t crc = r.u32();
  if (!r.ok()) return reject(r);
  // A delta only applies on the exact state it was journaled against —
  // replaying it anywhere else silently diverges the caches.
  if (base != seq_) return reject(r);
  if (util::crc32(body) != crc) return reject(r);
  replaying_ = true;
  SnapshotReader br(body);
  std::vector<rabin::Anchor> anchors;
  for (std::uint32_t i = 0; i < ops; ++i) {
    const std::uint8_t tag = br.u8();
    switch (tag) {
      case kOpUpdate: {
        PacketMeta meta;
        meta.flow_key = br.u64();
        meta.src_uid = br.u64();
        meta.stream_index = br.u64();
        meta.tcp_seq = br.u32();
        meta.tcp_end_seq = br.u32();
        meta.epoch = br.u32();
        meta.has_tcp_seq = br.u8() != 0;
        meta.host_key = br.u64();
        const std::uint32_t plen = br.u32();
        const util::BytesView payload = br.bytes(plen);
        const std::uint32_t nanchors = br.u32();
        if (!br.ok()) break;
        anchors.clear();
        anchors.reserve(nanchors);
        bool bad = false;
        for (std::uint32_t a = 0; a < nanchors; ++a) {
          rabin::Anchor anch;
          anch.fp = br.u64();
          anch.offset = br.u16();
          if (anch.offset >= plen) bad = true;
          anchors.push_back(anch);
        }
        if (bad) br.fail();
        if (!br.ok()) break;
        // Replays through the normal update path, so the replayed state
        // obeys every tier invariant the live one did.
        update(payload, anchors, meta);
        break;
      }
      case kOpInvalidate:
        invalidate(br.u64());
        break;
      case kOpFlush:
        flush();
        break;
      default:
        br.fail();
        break;
    }
    if (!br.ok()) {
      replaying_ = false;
      return reject(r);
    }
  }
  replaying_ = false;
  if (!br.at_end()) return reject(r);
  promote_queue_.clear();
  seq_ = base + 1;
  journal_reset();
  journal_overflow_ = config_.snapshot_mode != SnapshotMode::kIncremental;
  return true;
}

// -------------------------------------------------------------- journal

void CacheTier::journal_reset() {
  journal_ = SnapshotWriter{};
  journal_ops_ = 0;
}

void CacheTier::journal_update(util::BytesView payload,
                               const std::vector<rabin::Anchor>& anchors,
                               const PacketMeta& meta) {
  if (!journaling() || journal_overflow_) return;
  // An anchor-less update is a no-op in the cache; don't journal it.
  if (anchors.empty()) return;
  journal_.u8(kOpUpdate);
  journal_.u64(meta.flow_key);
  journal_.u64(meta.src_uid);
  journal_.u64(meta.stream_index);
  journal_.u32(meta.tcp_seq);
  journal_.u32(meta.tcp_end_seq);
  journal_.u32(meta.epoch);
  journal_.u8(meta.has_tcp_seq ? 1 : 0);
  journal_.u64(meta.host_key);
  journal_.u32(static_cast<std::uint32_t>(payload.size()));
  journal_.bytes(payload);
  journal_.u32(static_cast<std::uint32_t>(anchors.size()));
  for (const rabin::Anchor& a : anchors) {
    journal_.u64(a.fp);
    journal_.u16(a.offset);
  }
  ++journal_ops_;
  if (journal_.size() > kJournalCapBytes) {
    // Too much history for a useful delta: the next save_incremental()
    // falls back to a full image.  Drop the buffer now.
    journal_overflow_ = true;
    journal_reset();
  }
}

void CacheTier::journal_op(std::uint8_t tag, rabin::Fingerprint fp) {
  if (!journaling() || journal_overflow_) return;
  journal_.u8(tag);
  if (tag == kOpInvalidate) journal_.u64(fp);
  ++journal_ops_;
}

}  // namespace bytecache::cache
