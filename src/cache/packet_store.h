// Byte-budgeted LRU store of packet payloads.
//
// Both gateway caches hold full copies of recently seen payloads, keyed by
// a store-assigned id.  The store evicts least-recently-used payloads when
// a byte budget is exceeded; fingerprint-table entries that point at an
// evicted payload are invalidated lazily at lookup time (ByteCache checks
// `contains`).  The paper sizes caches so eviction does not occur within an
// experiment; the budget exists so the library is usable long-running.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "util/bytes.h"

namespace bytecache::cache {

/// Per-payload metadata recorded at insert time, needed by the encoding
/// policies (paper Fig. 7 line C.6 stores the TCP sequence number; the
/// k-distance policy needs the position in the packet stream).
struct PacketMeta {
  /// TCP sequence number of the segment, if the payload is TCP.
  std::uint32_t tcp_seq = 0;
  /// One past the last sequence number the segment covers (seq + datalen).
  std::uint32_t tcp_end_seq = 0;
  bool has_tcp_seq = false;

  /// 0-based position of the packet in the encoder's stream.
  std::uint64_t stream_index = 0;

  /// Cache-flush epoch the packet was inserted under.
  std::uint32_t epoch = 0;

  /// uid of the simulated packet this payload came from (tracing only).
  std::uint64_t src_uid = 0;

  /// TCP flow the payload belongs to (see PacketContext::flow_key).
  std::uint64_t flow_key = 0;
};

struct CachedPacket {
  std::uint64_t id = 0;
  util::Bytes payload;
  PacketMeta meta;
};

class PacketStore {
 public:
  /// `byte_budget` bounds the sum of stored payload sizes (0 = unbounded).
  explicit PacketStore(std::size_t byte_budget = 0);

  /// Stores a payload copy; returns its id.  May evict LRU entries.
  std::uint64_t insert(util::BytesView payload, const PacketMeta& meta);

  /// Returns the packet and marks it most-recently-used; nullptr if absent.
  [[nodiscard]] const CachedPacket* lookup(std::uint64_t id);

  /// Returns the packet without touching recency; nullptr if absent.
  [[nodiscard]] const CachedPacket* peek(std::uint64_t id) const;

  [[nodiscard]] bool contains(std::uint64_t id) const;

  /// Removes one packet (e.g. after a decoder NACK names it as lost).
  /// Returns true if it was present.
  bool erase(std::uint64_t id);

  /// Drops everything (cache flush).
  void clear();

  [[nodiscard]] std::size_t size() const { return index_.size(); }

  /// Entries from most- to least-recently used (snapshot/debug only).
  [[nodiscard]] const std::list<CachedPacket>& entries() const {
    return lru_;
  }

  /// Re-inserts a snapshotted entry at the LRU tail; callers restore in
  /// MRU-to-LRU order so recency is preserved.  Ids are kept; the id
  /// counter advances past them.
  void restore(CachedPacket entry);
  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// First id the store has never handed out (all live ids are below it).
  [[nodiscard]] std::uint64_t next_id() const { return next_id_; }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): byte accounting equals the sum of stored payload sizes, the
  /// id index and the LRU list are a bijection, every id is one the store
  /// assigned, and the byte budget holds whenever eviction can enforce it.
  void audit() const;

 private:
  void evict_to_budget();

  std::size_t byte_budget_;
  std::size_t bytes_used_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t evictions_ = 0;
  // Front = most recently used.
  std::list<CachedPacket> lru_;
  std::unordered_map<std::uint64_t, std::list<CachedPacket>::iterator> index_;
};

}  // namespace bytecache::cache
