// Byte-budgeted LRU store of packet payloads, backed by a slab of
// reusable slots.
//
// Both gateway caches hold full copies of recently seen payloads, keyed by
// a store-assigned id.  The store evicts least-recently-used payloads when
// a byte budget is exceeded.  Fingerprint-table entries pointing at an
// evicted payload are purged eagerly through the EvictionListener hook
// (ByteCache implements it); lazy invalidation at lookup time remains as
// defense in depth.  The paper sizes caches so eviction does not occur
// within an experiment; the budget exists so the library is usable
// long-running.
//
// Layout: entries live in a slot vector with intrusive prev/next links
// forming the LRU list, a freelist recycles slots, and the id index is an
// open-addressing FlatMap64.  Payload bytes live in a SliceArena
// (cache/slice_arena.h): insert copies into a size-classed slice from a
// hugepage-friendly area, evict pushes the slice back on its freelist —
// both O(1), and steady-state insert/evict churn never touches the
// system allocator (an evicted slot additionally keeps its fingerprint
// list's capacity) — the "pooled packet store" half of the
// zero-allocation data plane.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cache/cache_config.h"
#include "cache/flat_map.h"
#include "cache/slice_arena.h"
#include "rabin/window.h"
#include "util/bytes.h"

namespace bytecache::cache {

/// Read-only view of a cached payload.  The bytes live in the store's
/// slice arena (or, transiently, a slot's heap fallback) and are valid
/// exactly as long as the owning CachedPacket is live — the same
/// lifetime the pointer returned by PacketStore::lookup already had.
/// Converts to util::BytesView wherever a plain byte span is wanted and
/// compares against any contiguous byte range (tests compare payloads to
/// util::Bytes literals directly).
class PayloadView {
 public:
  constexpr PayloadView() = default;
  constexpr PayloadView(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] constexpr const std::uint8_t* data() const { return data_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] constexpr const std::uint8_t* end() const {
    return data_ + size_;
  }
  constexpr std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  // NOLINTNEXTLINE(google-explicit-constructor): drop-in span adaptation
  constexpr operator util::BytesView() const { return {data_, size_}; }

  friend bool operator==(const PayloadView& a, util::BytesView b) {
    return util::BytesView(a).size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Per-payload metadata recorded at insert time, needed by the encoding
/// policies (paper Fig. 7 line C.6 stores the TCP sequence number; the
/// k-distance policy needs the position in the packet stream).
struct PacketMeta {
  /// TCP sequence number of the segment, if the payload is TCP.
  std::uint32_t tcp_seq = 0;
  /// One past the last sequence number the segment covers (seq + datalen).
  std::uint32_t tcp_end_seq = 0;
  bool has_tcp_seq = false;

  /// 0-based position of the packet in the encoder's stream.
  std::uint64_t stream_index = 0;

  /// Cache-flush epoch the packet was inserted under.
  std::uint32_t epoch = 0;

  /// uid of the simulated packet this payload came from (tracing only).
  std::uint64_t src_uid = 0;

  /// TCP flow the payload belongs to (see PacketContext::flow_key).
  std::uint64_t flow_key = 0;

  /// Unordered IP endpoint pair the packet traveled between
  /// (core::flow.h host_key_of; 0 = unattributed).  The L2 tier's
  /// per-host-pair budget charges against this key; it is symmetric, so
  /// encoder and decoder attribute identically and stay in lockstep.
  std::uint64_t host_key = 0;
};

struct CachedPacket {
  std::uint64_t id = 0;
  /// Views the slot's arena slice; see PayloadView for the lifetime.
  PayloadView payload;
  PacketMeta meta;
  /// Selected fingerprints recorded for this payload at insert time; the
  /// eviction purge erases exactly these from the fingerprint table.
  std::vector<rabin::Fingerprint> fps;
};

/// Why a packet is leaving the store.  The L2 tier demotes kBudget
/// victims (still warm, just crowded out) but must NOT resurrect
/// kExplicit ones (NACK invalidation names a packet the peer lost —
/// keeping a copy anywhere would re-diverge the caches).
enum class EvictReason : std::uint8_t {
  kBudget,    // LRU eviction to meet the byte budget
  kExplicit,  // erase(): NACK invalidation or another deliberate removal
};

/// Eviction hook: notified with each packet the store expels to meet its
/// byte budget or erases explicitly (NOT on clear(), whose callers reset
/// the whole cache).  Runs *before* the payload's arena slice is freed,
/// so a listener may still copy the bytes (the L1 -> L2 demotion path).
/// A plain interface rather than std::function keeps the hot path free
/// of type-erased dispatch and allocation (see tools/lint.py bc-hotpath).
class EvictionListener {
 public:
  virtual ~EvictionListener() = default;
  virtual void on_evict(const CachedPacket& pkt, EvictReason reason) = 0;
};

class PacketStore {
 public:
  /// Uses `config.l1_bytes` to bound the sum of stored payload sizes
  /// (0 = unbounded).  The other CacheConfig knobs belong to the layers
  /// above (ByteCache, CacheTier).
  explicit PacketStore(const CacheConfig& config = {});

  /// Registers the eviction hook (at most one; nullptr detaches).
  void set_evict_listener(EvictionListener* listener) {
    listener_ = listener;
  }

  /// Stores a payload copy; returns its id.  May evict LRU entries (each
  /// reported to the eviction listener).  `anchors` is the payload's
  /// selected anchor set, whose fingerprints are retained for the
  /// eviction purge.
  std::uint64_t insert(util::BytesView payload, const PacketMeta& meta,
                       const std::vector<rabin::Anchor>& anchors = {});

  /// Returns the packet and marks it most-recently-used; nullptr if absent.
  [[nodiscard]] const CachedPacket* lookup(std::uint64_t id);

  /// Returns the packet without touching recency; nullptr if absent.
  [[nodiscard]] const CachedPacket* peek(std::uint64_t id) const;

  [[nodiscard]] bool contains(std::uint64_t id) const;

  /// Removes one packet (e.g. after a decoder NACK names it as lost),
  /// reporting it to the eviction listener so dependent fingerprint
  /// entries are purged.  Returns true if it was present.
  bool erase(std::uint64_t id);

  /// Drops everything (cache flush).  Slot buffers are retained for
  /// reuse; the eviction listener is NOT notified (callers reset the
  /// fingerprint table wholesale).
  void clear();

  [[nodiscard]] std::size_t size() const { return index_.size(); }

  /// Records `fp` as belonging to stored packet `id` (snapshot restore
  /// path, which bypasses insert()); no-op if the id is absent.
  void note_fingerprint(std::uint64_t id, rabin::Fingerprint fp);

  /// Patches the host-pair key of stored packet `id` (tier snapshot
  /// restore; see ByteCache::set_host_key); no-op if the id is absent.
  void set_host_key(std::uint64_t id, std::uint64_t host_key);

  /// Iterable view of the stored packets from most- to least-recently
  /// used (snapshot/debug only).
  class EntryView {
   public:
    class iterator {
     public:
      iterator(const PacketStore* store, std::uint32_t slot)
          : store_(store), slot_(slot) {}
      const CachedPacket& operator*() const {
        return store_->slots_[slot_].pkt;
      }
      const CachedPacket* operator->() const {
        return &store_->slots_[slot_].pkt;
      }
      iterator& operator++() {
        slot_ = store_->slots_[slot_].next;
        return *this;
      }
      bool operator==(const iterator& o) const { return slot_ == o.slot_; }
      bool operator!=(const iterator& o) const { return slot_ != o.slot_; }

     private:
      const PacketStore* store_;
      std::uint32_t slot_;
    };

    explicit EntryView(const PacketStore* store) : store_(store) {}
    [[nodiscard]] iterator begin() const {
      return iterator(store_, store_->head_);
    }
    [[nodiscard]] iterator end() const { return iterator(store_, kNil); }
    [[nodiscard]] std::size_t size() const { return store_->size(); }
    [[nodiscard]] const CachedPacket& front() const {
      return store_->slots_[store_->head_].pkt;
    }

   private:
    const PacketStore* store_;
  };

  [[nodiscard]] EntryView entries() const { return EntryView(this); }

  /// Re-inserts a snapshotted entry (by id, payload copy, and metadata)
  /// at the LRU tail; callers restore in MRU-to-LRU order so recency is
  /// preserved.  Ids are kept; the id counter advances past them.
  /// Fingerprints are re-attached via note_fingerprint.
  void restore(std::uint64_t id, util::BytesView payload,
               const PacketMeta& meta);

  /// Re-inserts a previously assigned id at the MRU end with its
  /// fingerprint list (the L2 -> L1 promotion path).  Exactly insert()
  /// except the id is the caller's: may evict LRU entries, reports them
  /// to the listener.  `id` must not be live and must have been assigned
  /// before (the id counter never moves backwards).
  void reinsert(std::uint64_t id, util::BytesView payload,
                const PacketMeta& meta,
                const std::vector<rabin::Fingerprint>& fps);

  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// The arena backing every stored payload (telemetry/tests).
  [[nodiscard]] const SliceArena& arena() const { return arena_; }

  /// First id the store has never handed out (all live ids are below it).
  [[nodiscard]] std::uint64_t next_id() const { return next_id_; }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): byte accounting equals the sum of stored payload sizes, the
  /// id index and the LRU chain are a bijection, live and free slots
  /// partition the slab, every id is one the store assigned, and the byte
  /// budget holds whenever eviction can enforce it.
  void audit() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    CachedPacket pkt;
    /// Arena slice holding pkt.payload's bytes (null when empty).
    SliceArena::Slice slice;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    bool live = false;
  };

  std::uint32_t acquire_slot();
  /// Copies `payload` into a fresh arena slice and points the slot's
  /// packet view at it.
  void assign_payload(Slot& s, util::BytesView payload);
  void release_slot(std::uint32_t slot);
  void link_front(std::uint32_t slot);
  void link_back(std::uint32_t slot);
  void unlink(std::uint32_t slot);
  void evict_to_budget();

  std::size_t byte_budget_;
  std::size_t bytes_used_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t evictions_ = 0;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;      // recycled slot indices
  FlatMap64<std::uint32_t> index_;       // id -> slot
  SliceArena arena_;                     // payload byte storage
  EvictionListener* listener_ = nullptr;
};

}  // namespace bytecache::cache
