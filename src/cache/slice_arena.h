// Slab allocator for cached payload bytes (the PacketStore's backing
// memory), in the style of beng-proxy's SlicePool.
//
// Payload buffers come from per-size-class freelists carved out of
// 2 MiB-aligned areas (hinted MADV_HUGEPAGE on Linux, so the kernel can
// back the whole arena with huge pages and the data-plane TLB footprint
// of a multi-hundred-MB cache collapses to one entry per 2 MiB).
#pragma once
//
// Size classes are the powers of two from 256 B to 64 KiB — the upper
// bound is the codec's 16-bit payload limit, the lower bound keeps the
// class count (and per-payload overhead, < 2x) small.  Each area is
// dedicated to ONE class and carved into equal slices whose first 8
// bytes, while free, hold the intrusive freelist link: alloc() pops a
// slice, free() pushes it back, both O(1) pointer swaps with zero
// per-slice metadata.  Areas are never returned to the OS before
// destruction; a long-running gateway's arena converges to the cache's
// working-set footprint and stops touching the system allocator
// entirely — the store/evict churn of the steady-state data plane costs
// two list operations per packet.
//
// Oversize requests (beyond 64 KiB: only reachable by direct PacketStore
// users, never through the codec) and zero-byte requests fall back to
// plain heap / null slices so the store stays fully general.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bytecache::cache {

class SliceArena {
 public:
  /// One allocated buffer: `data` points at class_size(cls) usable bytes
  /// (at least the requested size).  Treat as an opaque token to pass
  /// back to free(); a default-constructed (null) slice is the empty
  /// allocation and may be freed harmlessly.
  struct Slice {
    std::uint8_t* data = nullptr;
    std::uint8_t cls = 0;
  };

  static constexpr std::size_t kMinSlice = 256;
  static constexpr std::size_t kMaxSlice = 64 * 1024;
  static constexpr std::size_t kClasses = 9;  // 256 << 0 .. 256 << 8
  static constexpr std::size_t kAreaBytes = 2 * 1024 * 1024;
  /// Marker class for oversize heap-backed slices.
  static constexpr std::uint8_t kHeapClass = 0xFF;

  SliceArena() = default;
  ~SliceArena();

  // Freed slices hold raw pointers into the areas; relocation of the
  // bookkeeping is fine, but copying would double-free areas.
  SliceArena(const SliceArena&) = delete;
  SliceArena& operator=(const SliceArena&) = delete;

  /// Usable bytes of class `cls`.
  [[nodiscard]] static constexpr std::size_t class_size(std::uint8_t cls) {
    return kMinSlice << cls;
  }

  /// Smallest class fitting `n` bytes (n in [1, kMaxSlice]).
  [[nodiscard]] static std::uint8_t class_of(std::size_t n);

  /// Returns a slice of at least `n` bytes: a null slice for n == 0, a
  /// freelist slice for n <= kMaxSlice (carving a new area when the
  /// class's list is empty), a heap buffer beyond that.
  [[nodiscard]] Slice alloc(std::size_t n);

  /// Returns `s` to its freelist (or the heap).  Null slices are no-ops.
  void free(Slice s);

  /// Outstanding (allocated, not yet freed) slices.
  [[nodiscard]] std::size_t live() const { return live_; }

  /// Bytes of area memory reserved from the OS (excludes heap fallbacks).
  [[nodiscard]] std::size_t bytes_reserved() const {
    return areas_.size() * kAreaBytes;
  }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): every freelist link points into an area of the matching
  /// class, and live + free slice counts add up to the carved total.
  void audit() const;

  /// Test-only seams (tests/slice_arena_test.cc); cold — touched once
  /// per 2 MiB area, never per slice.
  struct TestHooks {
    /// When > 0, decremented per carve; hitting 0 makes that carve's
    /// bookkeeping growth throw std::bad_alloc — the exact window the
    /// area-leak regression test exercises.
    int fail_bookkeeping = 0;
    /// Process-lifetime balance of areas obtained from / returned to
    /// the OS (heap-fallback slices excluded).
    std::uint64_t areas_allocated = 0;
    std::uint64_t areas_freed = 0;
  };
  static TestHooks test_hooks;

 private:
  /// While free, a slice's first bytes hold the next freelist entry.
  struct FreeSlice {
    FreeSlice* next;
  };

  struct Area {
    std::uint8_t* base = nullptr;
    std::uint8_t cls = 0;
  };

  /// Ensures areas_ can record one more area, throwing (injectable via
  /// test_hooks) BEFORE any memory is obtained.
  void grow_bookkeeping();

  void carve_area(std::uint8_t cls);

  std::vector<Area> areas_;
  FreeSlice* free_lists_[kClasses] = {};
  std::size_t live_ = 0;
  std::size_t carved_ = 0;  // slices ever cut out of areas
};

}  // namespace bytecache::cache
