// Per-host-pair byte accounting for the L2 tier (cache/l2_store.h).
//
// The ROADMAP's million-user scenario fails exactly when one elephant
// host pair is allowed to evict everyone: a flat LRU shares one budget,
// so a single high-churn pair cycles the whole cache and every mouse's
// hit rate collapses.  The ledger tracks bytes per unordered IP endpoint
// pair (core::host_key_of, carried in PacketMeta::host_key) and the head
// and tail of each pair's intrusive recency chain through the L2 slots,
// so admission control can evict *that pair's own* coldest packets — and
// only ever that pair's — when it runs over its budget.
//
// Backed by FlatMap64 (no per-entry allocation on the demotion path);
// idle pairs are erased as soon as their last packet leaves, so the
// ledger's size tracks the live pair count, not the historical one.
#pragma once

#include <cstdint>

#include "cache/flat_map.h"

namespace bytecache::cache {

struct HostEntry {
  /// Payload bytes this pair currently holds in the stripe.
  std::size_t bytes = 0;
  /// Per-pair recency chain through the stripe's slots (kNil-terminated;
  /// head = warmest, tail = coldest).  The slot links themselves live in
  /// the stripe (L2Store::Slot::{host_prev,host_next}).
  std::uint32_t head = 0xFFFFFFFFu;
  std::uint32_t tail = 0xFFFFFFFFu;
  /// Packets this pair evicted of its own to stay under budget.
  std::uint64_t evictions = 0;
};

class HostLedger {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// The entry for `host_key`, created zeroed if absent.  The pointer is
  /// valid only until the next obtain/release (open addressing moves).
  HostEntry* obtain(std::uint64_t host_key);

  /// The entry for `host_key`, or nullptr (same stability caveat).
  [[nodiscard]] HostEntry* find(std::uint64_t host_key) {
    return map_.find(host_key);
  }
  [[nodiscard]] const HostEntry* find(std::uint64_t host_key) const {
    return map_.find(host_key);
  }

  /// Drops the entry once it is empty (bytes == 0 and no chained slots);
  /// no-op otherwise.
  void release_if_idle(std::uint64_t host_key);

  void clear() { map_.clear(); }

  /// Live host pairs (pairs currently holding at least one packet).
  [[nodiscard]] std::size_t pairs() const { return map_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each(fn);
  }

 private:
  FlatMap64<HostEntry> map_;
};

}  // namespace bytecache::cache
