#include "cache/byte_cache.h"

namespace bytecache::cache {

ByteCache::ByteCache(std::size_t byte_budget) : store_(byte_budget) {}

std::uint64_t ByteCache::update(util::BytesView payload,
                                const std::vector<rabin::Anchor>& anchors,
                                const PacketMeta& meta) {
  if (anchors.empty()) return 0;
  const std::uint64_t id = store_.insert(payload, meta);
  for (const rabin::Anchor& a : anchors) {
    table_.put(a.fp, FpEntry{id, a.offset});
  }
  ++stats_.packets_inserted;
  stats_.fingerprints_inserted += anchors.size();
  return id;
}

std::optional<CacheHit> ByteCache::find(rabin::Fingerprint fp) {
  ++stats_.lookups;
  auto entry = table_.get(fp);
  if (!entry) return std::nullopt;
  const CachedPacket* pkt = store_.lookup(entry->packet_id);
  if (pkt == nullptr) {
    // Packet evicted since the fingerprint was recorded.
    table_.erase(fp);
    ++stats_.stale_hits;
    return std::nullopt;
  }
  ++stats_.hits;
  return CacheHit{pkt, entry->offset};
}

bool ByteCache::invalidate(rabin::Fingerprint fp) {
  auto entry = table_.get(fp);
  if (!entry) return false;
  store_.erase(entry->packet_id);
  table_.erase(fp);
  return true;
}

void ByteCache::flush() {
  store_.clear();
  table_.clear();
  ++stats_.flushes;
}

}  // namespace bytecache::cache
