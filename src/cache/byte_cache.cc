#include "cache/byte_cache.h"

#include "util/check.h"

namespace bytecache::cache {

ByteCache::ByteCache(std::size_t byte_budget) : store_(byte_budget) {}

std::uint64_t ByteCache::update(util::BytesView payload,
                                const std::vector<rabin::Anchor>& anchors,
                                const PacketMeta& meta) {
  if (anchors.empty()) return 0;
  const std::uint64_t id = store_.insert(payload, meta);
  for (const rabin::Anchor& a : anchors) {
    table_.put(a.fp, FpEntry{id, a.offset});
  }
  ++stats_.packets_inserted;
  stats_.fingerprints_inserted += anchors.size();
  return id;
}

std::optional<CacheHit> ByteCache::find(rabin::Fingerprint fp) {
  ++stats_.lookups;
  auto entry = table_.get(fp);
  if (!entry) return std::nullopt;
  const CachedPacket* pkt = store_.lookup(entry->packet_id);
  if (pkt == nullptr) {
    // Packet evicted since the fingerprint was recorded.
    table_.erase(fp);
    ++stats_.stale_hits;
    return std::nullopt;
  }
  ++stats_.hits;
  return CacheHit{pkt, entry->offset};
}

bool ByteCache::invalidate(rabin::Fingerprint fp) {
  auto entry = table_.get(fp);
  if (!entry) return false;
  store_.erase(entry->packet_id);
  table_.erase(fp);
  return true;
}

void ByteCache::audit() const {
  if (!util::kAuditEnabled) return;
  store_.audit();
  table_.audit(store_);
  // (Snapshot restore bypasses the counters, so only intra-stat relations
  // can be asserted here, not stats against store contents.)
  BC_AUDIT(stats_.hits + stats_.stale_hits <= stats_.lookups)
      << "hits " << stats_.hits << " + stale " << stats_.stale_hits
      << " exceed lookups " << stats_.lookups;
}

void ByteCache::flush() {
  store_.clear();
  table_.clear();
  ++stats_.flushes;
}

}  // namespace bytecache::cache
