#include "cache/byte_cache.h"

#include "util/check.h"

namespace bytecache::cache {

ByteCache::ByteCache(const CacheConfig& config) : store_(config) {
  store_.set_evict_listener(this);
  if (config.l1_bytes > 0) {
    // One selected fingerprint per 2^select_bits = 16 payload bytes at the
    // paper's parameters: pre-size the table so steady state never
    // rehashes.
    table_.reserve(config.l1_bytes / 16);
  }
}

void ByteCache::on_evict(const CachedPacket& pkt, EvictReason reason) {
  // Purge only entries still owned by the evicted packet: a newer payload
  // may have overwritten some of them, and those must survive.  The
  // owned set (with its stored offsets) is what a demotion carries into
  // the L2 index, so collect it in the same pass.
  demote_scratch_.clear();
  for (rabin::Fingerprint fp : pkt.fps) {
    const auto entry = table_.get(fp);
    if (!entry || entry->packet_id != pkt.id) continue;
    demote_scratch_.push_back(DemotedFp{fp, entry->offset});
    table_.erase(fp);
    ++stats_.fingerprints_purged;
  }
  // Budget victims are still warm — offer them to the tier below.  A
  // packet owning no entries can never be hit again (lookups start at
  // the fingerprint table), so demoting it would only waste L2 bytes.
  if (reason == EvictReason::kBudget && demote_sink_ != nullptr &&
      !demote_scratch_.empty()) {
    demote_sink_->on_demote(pkt, demote_scratch_);
  }
}

void ByteCache::readmit(std::uint64_t id, util::BytesView payload,
                        const PacketMeta& meta,
                        const std::vector<rabin::Fingerprint>& fps,
                        std::span<const DemotedFp> owned) {
  store_.reinsert(id, payload, meta, fps);
  // The promoted packet owned these entries in the L2 index, which means
  // no newer packet took them (an update() overwriting a fingerprint
  // erases the L2 side, see CacheTier::update) — so the slots are free.
  for (const DemotedFp& o : owned) {
    table_.put(o.fp, FpEntry{id, o.offset});
  }
}

std::uint64_t ByteCache::update(util::BytesView payload,
                                const std::vector<rabin::Anchor>& anchors,
                                const PacketMeta& meta) {
  if (anchors.empty()) return 0;
  const std::uint64_t id = store_.insert(payload, meta, anchors);
  for (const rabin::Anchor& a : anchors) {
    table_.put(a.fp, FpEntry{id, a.offset});
  }
  ++stats_.packets_inserted;
  stats_.fingerprints_inserted += anchors.size();
  return id;
}

std::optional<CacheHit> ByteCache::find(rabin::Fingerprint fp) {
  ++stats_.lookups;
  auto entry = table_.get(fp);
  if (!entry) return std::nullopt;
  const CachedPacket* pkt = store_.lookup(entry->packet_id);
  if (pkt == nullptr) {
    // Unreachable while the eviction purge holds (see audit), but kept:
    // a stale entry must never serve a hit.
    table_.erase(fp);
    ++stats_.stale_hits;
    return std::nullopt;
  }
  ++stats_.hits;
  return CacheHit{pkt, entry->offset};
}

void ByteCache::probe_batch(std::span<const rabin::Anchor> anchors,
                            std::vector<ProbeResult>& out) const {
  out.resize(anchors.size());
  table_.probe_batch(anchors, out);
}

std::optional<CacheHit> ByteCache::resolve(rabin::Fingerprint fp,
                                           const ProbeResult& probe) {
  // Mirrors find() step for step; the probe replaces only the table get.
  ++stats_.lookups;
  if (!probe.found) return std::nullopt;
  const CachedPacket* pkt = store_.lookup(probe.entry.packet_id);
  if (pkt == nullptr) {
    // Unreachable while the eviction purge holds (see audit), but kept:
    // a stale entry must never serve a hit.  (If the same stale
    // fingerprint was probed twice in one batch, the second erase is a
    // no-op and stale_hits counts it again — find() would have counted a
    // plain miss — an observable difference only on this
    // purge-already-failed path.)
    table_.erase(fp);
    ++stats_.stale_hits;
    return std::nullopt;
  }
  ++stats_.hits;
  return CacheHit{pkt, probe.entry.offset};
}

bool ByteCache::invalidate(rabin::Fingerprint fp) {
  auto entry = table_.get(fp);
  if (!entry) return false;
  store_.erase(entry->packet_id);  // eviction hook purges fp and siblings
  table_.erase(fp);                // no-op if the hook already removed it
  return true;
}

void ByteCache::audit() const {
  if (!util::kAuditEnabled) return;
  store_.audit();
  const std::size_t stale = table_.audit(store_);
  // The eviction purge removes every fingerprint of an evicted packet the
  // moment it leaves the store, so staleness cannot accumulate.
  BC_AUDIT(stale == 0) << stale << " stale fingerprint entries survived "
                       << "the eviction purge";
  // (Snapshot restore bypasses the counters, so only intra-stat relations
  // can be asserted here, not stats against store contents.)
  BC_AUDIT(stats_.hits + stats_.stale_hits <= stats_.lookups)
      << "hits " << stats_.hits << " + stale " << stats_.stale_hits
      << " exceed lookups " << stats_.lookups;
}

void ByteCache::flush() {
  store_.clear();
  table_.clear();
  ++stats_.flushes;
}

void ByteCache::save(SnapshotWriter& w) const {
  w.u32(kSnapMagicFlat);
  w.u32(static_cast<std::uint32_t>(store_.size()));
  for (const CachedPacket& p : store_.entries()) {
    w.u64(p.id);
    w.u64(p.meta.flow_key);
    w.u64(p.meta.src_uid);
    w.u64(p.meta.stream_index);
    w.u32(p.meta.tcp_seq);
    w.u32(p.meta.tcp_end_seq);
    w.u32(p.meta.epoch);
    w.u8(p.meta.has_tcp_seq ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(p.payload.size()));
    w.bytes(p.payload);
  }
  w.u32(static_cast<std::uint32_t>(table_.size()));
  table_.for_each([&](rabin::Fingerprint fp, const FpEntry& entry) {
    w.u64(fp);
    w.u64(entry.packet_id);
    w.u16(entry.offset);
  });
}

bool ByteCache::load(SnapshotReader& r) {
  flush();
  auto reject = [&] {
    flush();
    r.fail();
    return false;
  };
  if (r.u32() != kSnapMagicFlat || !r.ok()) return reject();
  const std::uint32_t packets = r.u32();
  for (std::uint32_t i = 0; i < packets; ++i) {
    const std::uint64_t id = r.u64();
    PacketMeta meta;
    meta.flow_key = r.u64();
    meta.src_uid = r.u64();
    meta.stream_index = r.u64();
    meta.tcp_seq = r.u32();
    meta.tcp_end_seq = r.u32();
    meta.epoch = r.u32();
    meta.has_tcp_seq = r.u8() != 0;
    const std::uint32_t len = r.u32();
    const util::BytesView payload = r.bytes(len);
    // PacketStore::restore trusts its input: a zero or duplicate id would
    // corrupt the id index, so reject the snapshot instead.
    if (!r.ok() || id == 0 || store_.contains(id)) return reject();
    // The payload is copied straight from the snapshot into the store's
    // arena — no intermediate owning buffer.
    restore_packet(id, payload, meta);
  }
  const std::uint32_t fps = r.u32();
  for (std::uint32_t i = 0; i < fps; ++i) {
    const rabin::Fingerprint fp = r.u64();
    FpEntry entry;
    entry.packet_id = r.u64();
    entry.offset = r.u16();
    if (!r.ok()) return reject();
    // A fingerprint naming an absent packet (or a window starting past
    // the owner's payload) breaks the table invariants that audit() and
    // the hit-expansion path rely on; a corrupted or truncated snapshot
    // must come back empty, not subtly wrong.
    const CachedPacket* owner = store_.peek(entry.packet_id);
    if (owner == nullptr || entry.offset >= owner->payload.size()) {
      return reject();
    }
    restore_fingerprint(fp, entry);
  }
  return r.ok();
}

}  // namespace bytecache::cache
