#include "cache/byte_cache.h"

#include "util/check.h"

namespace bytecache::cache {

ByteCache::ByteCache(std::size_t byte_budget) : store_(byte_budget) {
  store_.set_evict_listener(this);
  if (byte_budget > 0) {
    // One selected fingerprint per 2^select_bits = 16 payload bytes at the
    // paper's parameters: pre-size the table so steady state never
    // rehashes.
    table_.reserve(byte_budget / 16);
  }
}

void ByteCache::on_evict(const CachedPacket& pkt) {
  // Purge only entries still owned by the evicted packet: a newer payload
  // may have overwritten some of them, and those must survive.
  for (rabin::Fingerprint fp : pkt.fps) {
    if (table_.erase_if_owner(fp, pkt.id)) ++stats_.fingerprints_purged;
  }
}

std::uint64_t ByteCache::update(util::BytesView payload,
                                const std::vector<rabin::Anchor>& anchors,
                                const PacketMeta& meta) {
  if (anchors.empty()) return 0;
  const std::uint64_t id = store_.insert(payload, meta, anchors);
  for (const rabin::Anchor& a : anchors) {
    table_.put(a.fp, FpEntry{id, a.offset});
  }
  ++stats_.packets_inserted;
  stats_.fingerprints_inserted += anchors.size();
  return id;
}

std::optional<CacheHit> ByteCache::find(rabin::Fingerprint fp) {
  ++stats_.lookups;
  auto entry = table_.get(fp);
  if (!entry) return std::nullopt;
  const CachedPacket* pkt = store_.lookup(entry->packet_id);
  if (pkt == nullptr) {
    // Unreachable while the eviction purge holds (see audit), but kept:
    // a stale entry must never serve a hit.
    table_.erase(fp);
    ++stats_.stale_hits;
    return std::nullopt;
  }
  ++stats_.hits;
  return CacheHit{pkt, entry->offset};
}

void ByteCache::probe_batch(std::span<const rabin::Anchor> anchors,
                            std::vector<ProbeResult>& out) const {
  out.resize(anchors.size());
  table_.probe_batch(anchors, out);
}

std::optional<CacheHit> ByteCache::resolve(rabin::Fingerprint fp,
                                           const ProbeResult& probe) {
  // Mirrors find() step for step; the probe replaces only the table get.
  ++stats_.lookups;
  if (!probe.found) return std::nullopt;
  const CachedPacket* pkt = store_.lookup(probe.entry.packet_id);
  if (pkt == nullptr) {
    // Unreachable while the eviction purge holds (see audit), but kept:
    // a stale entry must never serve a hit.  (If the same stale
    // fingerprint was probed twice in one batch, the second erase is a
    // no-op and stale_hits counts it again — find() would have counted a
    // plain miss — an observable difference only on this
    // purge-already-failed path.)
    table_.erase(fp);
    ++stats_.stale_hits;
    return std::nullopt;
  }
  ++stats_.hits;
  return CacheHit{pkt, probe.entry.offset};
}

bool ByteCache::invalidate(rabin::Fingerprint fp) {
  auto entry = table_.get(fp);
  if (!entry) return false;
  store_.erase(entry->packet_id);  // eviction hook purges fp and siblings
  table_.erase(fp);                // no-op if the hook already removed it
  return true;
}

void ByteCache::audit() const {
  if (!util::kAuditEnabled) return;
  store_.audit();
  const std::size_t stale = table_.audit(store_);
  // The eviction purge removes every fingerprint of an evicted packet the
  // moment it leaves the store, so staleness cannot accumulate.
  BC_AUDIT(stale == 0) << stale << " stale fingerprint entries survived "
                       << "the eviction purge";
  // (Snapshot restore bypasses the counters, so only intra-stat relations
  // can be asserted here, not stats against store contents.)
  BC_AUDIT(stats_.hits + stats_.stale_hits <= stats_.lookups)
      << "hits " << stats_.hits << " + stale " << stats_.stale_hits
      << " exceed lookups " << stats_.lookups;
}

void ByteCache::flush() {
  store_.clear();
  table_.clear();
  ++stats_.flushes;
}

}  // namespace bytecache::cache
