// Fingerprint -> (packet id, offset) index.
//
// Matches the paper's cache-update procedure (Fig. 2 C / Fig. 7 C): each
// selected fingerprint maps to the *latest* packet containing it and the
// offset of the window within that packet; inserting an existing
// fingerprint overwrites the entry ("the encoder also updates its cache by
// replacing the entry for r from Pstored to Pnew", Section III-A).
//
// Backed by the open-addressing FlatMap64 (see flat_map.h) rather than
// std::unordered_map: one contiguous probe per lookup and no per-entry
// allocation on the encoder's per-packet path.  Entries whose packet was
// evicted are purged eagerly by ByteCache's eviction hook, so the table's
// memory is bounded by the live cache contents; lazy invalidation at
// lookup time remains as defense in depth.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "cache/flat_map.h"
#include "rabin/rabin.h"
#include "rabin/window.h"

namespace bytecache::cache {

class PacketStore;

struct FpEntry {
  std::uint64_t packet_id = 0;  // PacketStore id
  std::uint16_t offset = 0;     // window start within the payload
};

/// Result of one batched probe: the entry is copied by value because the
/// caller resolves probes interleaved with table mutation (stale-entry
/// erase), which invalidates FlatMap64 pointers.
struct ProbeResult {
  FpEntry entry;
  bool found = false;
};

class FingerprintTable {
 public:
  /// Inserts or overwrites the entry for `fp`.  Entries must reference a
  /// store-assigned id (never 0).
  void put(rabin::Fingerprint fp, FpEntry entry) {
    if (entry.packet_id == 0) return;
    map_.put(fp, entry);
  }

  /// Looks up `fp`; nullopt if absent.
  [[nodiscard]] std::optional<FpEntry> get(rabin::Fingerprint fp) const {
    const FpEntry* e = map_.find(fp);
    if (e == nullptr) return std::nullopt;
    return *e;
  }

  /// Removes the entry for `fp` if present.
  void erase(rabin::Fingerprint fp) { map_.erase(fp); }

  /// Hints the cache to pull `fp`'s home slot (see FlatMap64::prefetch).
  void prefetch(rabin::Fingerprint fp) const { map_.prefetch(fp); }

  /// Probes every anchor's fingerprint, writing out[i] for anchors[i].
  /// While probing anchor N the table issues a prefetch for anchor
  /// N+kProbeAhead's home slot, so the encoder's anchor->match loop pays
  /// one L1 hit per probe instead of one cache miss each.  Side-effect
  /// free: no stats, no LRU touch — the caller resolves hits through
  /// ByteCache::resolve in its own order.  Requires out.size() >=
  /// anchors.size().
  void probe_batch(std::span<const rabin::Anchor> anchors,
                   std::span<ProbeResult> out) const;

  /// Probe lookahead distance: far enough to cover an L2 miss across the
  /// ~6 probes in flight at typical anchor densities, small enough that
  /// short anchor lists still get full coverage.
  static constexpr std::size_t kProbeAhead = 8;

  /// Removes the entry for `fp` only if it references `packet_id` (the
  /// eviction-purge path: a newer packet may have overwritten the entry,
  /// which must then survive the old packet's eviction).  Returns true if
  /// an entry was removed.
  bool erase_if_owner(rabin::Fingerprint fp, std::uint64_t packet_id) {
    const FpEntry* e = map_.find(fp);
    if (e == nullptr || e->packet_id != packet_id) return false;
    map_.erase(fp);
    return true;
  }

  void clear() { map_.clear(); }

  /// Pre-sizes the table for `n` fingerprints (derived from the cache
  /// byte budget by ByteCache) so steady-state inserts never rehash.
  void reserve(std::size_t n) { map_.reserve(n); }

  /// Deep invariant audit against the store the entries point into
  /// (BC_AUDIT; no-op unless the build enables audits).  Every entry
  /// either resolves — its packet id was assigned by `store`, is present,
  /// and the recorded offset lies inside the payload — or is stale
  /// (packet evicted), which lazy invalidation permits.  Returns the
  /// number of stale entries so callers can bound staleness if they wish
  /// (with eviction purging wired, it stays 0).
  std::size_t audit(const PacketStore& store) const;

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Visits every (fingerprint, entry) pair in unspecified order
  /// (snapshots and audits).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each(fn);
  }

 private:
  FlatMap64<FpEntry> map_;
};

}  // namespace bytecache::cache
