// Fingerprint -> (packet id, offset) index.
//
// Matches the paper's cache-update procedure (Fig. 2 C / Fig. 7 C): each
// selected fingerprint maps to the *latest* packet containing it and the
// offset of the window within that packet; inserting an existing
// fingerprint overwrites the entry ("the encoder also updates its cache by
// replacing the entry for r from Pstored to Pnew", Section III-A).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "rabin/rabin.h"

namespace bytecache::cache {

class PacketStore;

struct FpEntry {
  std::uint64_t packet_id = 0;  // PacketStore id
  std::uint16_t offset = 0;     // window start within the payload
};

class FingerprintTable {
 public:
  /// Inserts or overwrites the entry for `fp`.
  void put(rabin::Fingerprint fp, FpEntry entry);

  /// Looks up `fp`; nullopt if absent.
  [[nodiscard]] std::optional<FpEntry> get(rabin::Fingerprint fp) const;

  /// Removes the entry for `fp` if present (lazy invalidation of entries
  /// whose packet was evicted).
  void erase(rabin::Fingerprint fp);

  void clear();

  /// Deep invariant audit against the store the entries point into
  /// (BC_AUDIT; no-op unless the build enables audits).  Every entry
  /// either resolves — its packet id was assigned by `store`, is present,
  /// and the recorded offset lies inside the payload — or is stale
  /// (packet evicted), which lazy invalidation permits.  Returns the
  /// number of stale entries so callers can bound staleness if they wish.
  std::size_t audit(const PacketStore& store) const;

  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Raw view for snapshots (unordered).
  [[nodiscard]] const std::unordered_map<rabin::Fingerprint, FpEntry>&
  entries() const {
    return map_;
  }

 private:
  std::unordered_map<rabin::Fingerprint, FpEntry> map_;
};

}  // namespace bytecache::cache
