#include "cache/packet_store.h"

#include <algorithm>

#include "util/check.h"

namespace bytecache::cache {

PacketStore::PacketStore(std::size_t byte_budget) : byte_budget_(byte_budget) {}

std::uint64_t PacketStore::insert(util::BytesView payload,
                                  const PacketMeta& meta) {
  CachedPacket entry;
  entry.id = next_id_++;
  entry.payload.assign(payload.begin(), payload.end());
  entry.meta = meta;
  bytes_used_ += entry.payload.size();
  lru_.push_front(std::move(entry));
  index_.emplace(lru_.front().id, lru_.begin());
  evict_to_budget();
  return lru_.empty() ? 0 : lru_.front().id;
}

const CachedPacket* PacketStore::lookup(std::uint64_t id) {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return &*it->second;
}

const CachedPacket* PacketStore::peek(std::uint64_t id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &*it->second;
}

bool PacketStore::contains(std::uint64_t id) const {
  return index_.count(id) != 0;
}

void PacketStore::restore(CachedPacket entry) {
  next_id_ = std::max(next_id_, entry.id + 1);
  bytes_used_ += entry.payload.size();
  lru_.push_back(std::move(entry));
  index_.emplace(lru_.back().id, std::prev(lru_.end()));
}

bool PacketStore::erase(std::uint64_t id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  bytes_used_ -= it->second->payload.size();
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void PacketStore::clear() {
  lru_.clear();
  index_.clear();
  bytes_used_ = 0;
}

void PacketStore::audit() const {
  if (!util::kAuditEnabled) return;
  std::size_t bytes = 0;
  std::size_t entries = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    bytes += it->payload.size();
    ++entries;
    BC_AUDIT(it->id != 0 && it->id < next_id_)
        << "stored id " << it->id << " was never assigned (next_id "
        << next_id_ << ")";
    auto idx = index_.find(it->id);
    BC_AUDIT(idx != index_.end())
        << "LRU entry " << it->id << " missing from the id index";
    if (idx != index_.end()) {
      BC_AUDIT(idx->second == it)
          << "index iterator for id " << it->id
          << " does not point at its LRU node";
    }
  }
  // Together with the per-entry lookups above this makes index_ <-> lru_ a
  // bijection: every list node is indexed, and the sizes match.
  BC_AUDIT(entries == index_.size())
      << "LRU list has " << entries << " entries but the index has "
      << index_.size();
  BC_AUDIT(bytes == bytes_used_)
      << "bytes_used_ " << bytes_used_ << " != sum of payload sizes "
      << bytes;
  BC_AUDIT(byte_budget_ == 0 || bytes_used_ <= byte_budget_ ||
           entries <= 1)
      << "byte budget " << byte_budget_ << " exceeded: " << bytes_used_
      << " bytes across " << entries << " entries";
}

void PacketStore::evict_to_budget() {
  if (byte_budget_ == 0) return;
  while (bytes_used_ > byte_budget_ && lru_.size() > 1) {
    // Never evict the entry just inserted (front).
    const CachedPacket& victim = lru_.back();
    bytes_used_ -= victim.payload.size();
    index_.erase(victim.id);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace bytecache::cache
