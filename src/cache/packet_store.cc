#include "cache/packet_store.h"

#include <algorithm>

namespace bytecache::cache {

PacketStore::PacketStore(std::size_t byte_budget) : byte_budget_(byte_budget) {}

std::uint64_t PacketStore::insert(util::BytesView payload,
                                  const PacketMeta& meta) {
  CachedPacket entry;
  entry.id = next_id_++;
  entry.payload.assign(payload.begin(), payload.end());
  entry.meta = meta;
  bytes_used_ += entry.payload.size();
  lru_.push_front(std::move(entry));
  index_.emplace(lru_.front().id, lru_.begin());
  evict_to_budget();
  return lru_.empty() ? 0 : lru_.front().id;
}

const CachedPacket* PacketStore::lookup(std::uint64_t id) {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return &*it->second;
}

const CachedPacket* PacketStore::peek(std::uint64_t id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &*it->second;
}

bool PacketStore::contains(std::uint64_t id) const {
  return index_.count(id) != 0;
}

void PacketStore::restore(CachedPacket entry) {
  next_id_ = std::max(next_id_, entry.id + 1);
  bytes_used_ += entry.payload.size();
  lru_.push_back(std::move(entry));
  index_.emplace(lru_.back().id, std::prev(lru_.end()));
}

bool PacketStore::erase(std::uint64_t id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  bytes_used_ -= it->second->payload.size();
  lru_.erase(it->second);
  index_.erase(it);
  return true;
}

void PacketStore::clear() {
  lru_.clear();
  index_.clear();
  bytes_used_ = 0;
}

void PacketStore::evict_to_budget() {
  if (byte_budget_ == 0) return;
  while (bytes_used_ > byte_budget_ && lru_.size() > 1) {
    // Never evict the entry just inserted (front).
    const CachedPacket& victim = lru_.back();
    bytes_used_ -= victim.payload.size();
    index_.erase(victim.id);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace bytecache::cache
