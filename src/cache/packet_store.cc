#include "cache/packet_store.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace bytecache::cache {

PacketStore::PacketStore(const CacheConfig& config)
    : byte_budget_(config.l1_bytes) {}

std::uint32_t PacketStore::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void PacketStore::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  // The payload's slice goes back on its arena freelist; the fingerprint
  // list clear() keeps heap capacity for the next occupant.
  arena_.free(s.slice);
  s.slice = SliceArena::Slice{};
  s.pkt.payload = PayloadView{};
  s.pkt.fps.clear();
  s.pkt.id = 0;
  s.live = false;
  free_.push_back(slot);
}

void PacketStore::assign_payload(Slot& s, util::BytesView payload) {
  s.slice = arena_.alloc(payload.size());
  if (!payload.empty()) {
    std::memcpy(s.slice.data, payload.data(), payload.size());
  }
  s.pkt.payload = PayloadView{s.slice.data, payload.size()};
}

void PacketStore::link_front(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.prev = kNil;
  s.next = head_;
  if (head_ != kNil) slots_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNil) tail_ = slot;
}

void PacketStore::link_back(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.next = kNil;
  s.prev = tail_;
  if (tail_ != kNil) slots_[tail_].next = slot;
  tail_ = slot;
  if (head_ == kNil) head_ = slot;
}

void PacketStore::unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.prev != kNil) slots_[s.prev].next = s.next;
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  if (head_ == slot) head_ = s.next;
  if (tail_ == slot) tail_ = s.prev;
  s.prev = s.next = kNil;
}

std::uint64_t PacketStore::insert(util::BytesView payload,
                                  const PacketMeta& meta,
                                  const std::vector<rabin::Anchor>& anchors) {
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.pkt.id = next_id_++;
  assign_payload(s, payload);
  s.pkt.meta = meta;
  s.pkt.fps.clear();
  s.pkt.fps.reserve(anchors.size());
  for (const rabin::Anchor& a : anchors) s.pkt.fps.push_back(a.fp);
  s.live = true;
  bytes_used_ += s.pkt.payload.size();
  link_front(slot);
  index_.put(s.pkt.id, slot);
  evict_to_budget();
  return head_ == kNil ? 0 : slots_[head_].pkt.id;
}

const CachedPacket* PacketStore::lookup(std::uint64_t id) {
  const std::uint32_t* slot = index_.find(id);
  if (slot == nullptr) return nullptr;
  if (head_ != *slot) {  // move to front
    unlink(*slot);
    link_front(*slot);
  }
  return &slots_[*slot].pkt;
}

const CachedPacket* PacketStore::peek(std::uint64_t id) const {
  const std::uint32_t* slot = index_.find(id);
  return slot == nullptr ? nullptr : &slots_[*slot].pkt;
}

bool PacketStore::contains(std::uint64_t id) const {
  return index_.find(id) != nullptr;
}

void PacketStore::note_fingerprint(std::uint64_t id, rabin::Fingerprint fp) {
  const std::uint32_t* slot = index_.find(id);
  if (slot != nullptr) slots_[*slot].pkt.fps.push_back(fp);
}

void PacketStore::set_host_key(std::uint64_t id, std::uint64_t host_key) {
  const std::uint32_t* slot = index_.find(id);
  if (slot != nullptr) slots_[*slot].pkt.meta.host_key = host_key;
}

void PacketStore::restore(std::uint64_t id, util::BytesView payload,
                          const PacketMeta& meta) {
  next_id_ = std::max(next_id_, id + 1);
  bytes_used_ += payload.size();
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.pkt.id = id;
  assign_payload(s, payload);
  s.pkt.meta = meta;
  s.pkt.fps.clear();
  s.live = true;
  link_back(slot);
  index_.put(s.pkt.id, slot);
}

void PacketStore::reinsert(std::uint64_t id, util::BytesView payload,
                           const PacketMeta& meta,
                           const std::vector<rabin::Fingerprint>& fps) {
  BC_CHECK(id != 0 && id < next_id_)
      << "reinsert of id " << id << " the store never assigned (next_id "
      << next_id_ << ")";
  BC_CHECK(index_.find(id) == nullptr)
      << "reinsert of live id " << id;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.pkt.id = id;
  assign_payload(s, payload);
  s.pkt.meta = meta;
  s.pkt.fps = fps;
  s.live = true;
  bytes_used_ += s.pkt.payload.size();
  link_front(slot);
  index_.put(id, slot);
  evict_to_budget();
}

bool PacketStore::erase(std::uint64_t id) {
  const std::uint32_t* found = index_.find(id);
  if (found == nullptr) return false;
  const std::uint32_t slot = *found;
  if (listener_ != nullptr) {
    listener_->on_evict(slots_[slot].pkt, EvictReason::kExplicit);
  }
  bytes_used_ -= slots_[slot].pkt.payload.size();
  unlink(slot);
  index_.erase(id);
  release_slot(slot);
  return true;
}

void PacketStore::clear() {
  for (std::uint32_t s = head_; s != kNil;) {
    const std::uint32_t next = slots_[s].next;
    slots_[s].prev = slots_[s].next = kNil;
    release_slot(s);
    s = next;
  }
  head_ = tail_ = kNil;
  index_.clear();
  bytes_used_ = 0;
}

void PacketStore::audit() const {
  if (!util::kAuditEnabled) return;
  std::size_t bytes = 0;
  std::size_t entries = 0;
  std::size_t arena_slices = 0;  // live entries backed by an arena slice
  std::uint32_t prev = kNil;
  for (std::uint32_t s = head_; s != kNil; s = slots_[s].next) {
    const Slot& slot = slots_[s];
    bytes += slot.pkt.payload.size();
    ++entries;
    BC_AUDIT(slot.pkt.payload.data() == slot.slice.data)
        << "slot " << s << " payload view detached from its slice";
    if (slot.slice.data != nullptr && slot.slice.cls != SliceArena::kHeapClass) {
      ++arena_slices;
      BC_AUDIT(slot.pkt.payload.size() <=
               SliceArena::class_size(slot.slice.cls))
          << "slot " << s << " payload of " << slot.pkt.payload.size()
          << " bytes overflows its class "
          << SliceArena::class_size(slot.slice.cls);
    }
    BC_AUDIT(slot.live) << "LRU chain reaches freed slot " << s;
    BC_AUDIT(slot.prev == prev)
        << "slot " << s << " back-link " << slot.prev
        << " does not match predecessor " << prev;
    BC_AUDIT(slot.pkt.id != 0 && slot.pkt.id < next_id_)
        << "stored id " << slot.pkt.id << " was never assigned (next_id "
        << next_id_ << ")";
    const std::uint32_t* idx = index_.find(slot.pkt.id);
    BC_AUDIT(idx != nullptr)
        << "LRU entry " << slot.pkt.id << " missing from the id index";
    if (idx != nullptr) {
      BC_AUDIT(*idx == s) << "index entry for id " << slot.pkt.id
                          << " points at slot " << *idx << ", not " << s;
    }
    prev = s;
  }
  BC_AUDIT(tail_ == prev)
      << "LRU tail " << tail_ << " does not terminate the chain (" << prev
      << ")";
  // Together with the per-entry lookups above this makes index_ <-> chain
  // a bijection: every chain node is indexed, and the sizes match.
  BC_AUDIT(entries == index_.size())
      << "LRU chain has " << entries << " entries but the index has "
      << index_.size();
  BC_AUDIT(entries + free_.size() == slots_.size())
      << entries << " live + " << free_.size() << " free slots != slab of "
      << slots_.size();
  BC_AUDIT(bytes == bytes_used_)
      << "bytes_used_ " << bytes_used_ << " != sum of payload sizes "
      << bytes;
  BC_AUDIT(byte_budget_ == 0 || bytes_used_ <= byte_budget_ ||
           entries <= 1)
      << "byte budget " << byte_budget_ << " exceeded: " << bytes_used_
      << " bytes across " << entries << " entries";
  arena_.audit();
  BC_AUDIT(arena_.live() == arena_slices)
      << "arena reports " << arena_.live() << " live slices but "
      << arena_slices << " live entries hold one";
}

void PacketStore::evict_to_budget() {
  if (byte_budget_ == 0) return;
  while (bytes_used_ > byte_budget_ && head_ != tail_) {
    // Never evict the entry just inserted (front).
    const std::uint32_t victim = tail_;
    const CachedPacket& pkt = slots_[victim].pkt;
    if (listener_ != nullptr) listener_->on_evict(pkt, EvictReason::kBudget);
    bytes_used_ -= pkt.payload.size();
    index_.erase(pkt.id);
    unlink(victim);
    release_slot(victim);
    ++evictions_;
  }
}

}  // namespace bytecache::cache
