#include "cache/fingerprint_table.h"

#include <ios>

#include "cache/packet_store.h"
#include "util/check.h"

namespace bytecache::cache {

std::size_t FingerprintTable::audit(const PacketStore& store) const {
  if (!util::kAuditEnabled) return 0;
  std::size_t stale = 0;
  map_.for_each([&](std::uint64_t fp, const FpEntry& entry) {
    BC_AUDIT(entry.packet_id != 0 && entry.packet_id < store.next_id())
        << "fingerprint 0x" << std::hex << fp << std::dec
        << " references id " << entry.packet_id
        << " the store never assigned (next_id " << store.next_id() << ")";
    const CachedPacket* pkt = store.peek(entry.packet_id);
    if (pkt == nullptr) {
      ++stale;  // packet evicted since the entry was written: legal
      return;
    }
    BC_AUDIT(entry.offset < pkt->payload.size())
        << "fingerprint 0x" << std::hex << fp << std::dec << " offset "
        << entry.offset << " outside payload of " << pkt->payload.size()
        << " bytes (id " << entry.packet_id << ")";
  });
  return stale;
}

}  // namespace bytecache::cache
