#include "cache/fingerprint_table.h"

namespace bytecache::cache {

void FingerprintTable::put(rabin::Fingerprint fp, FpEntry entry) {
  map_[fp] = entry;
}

std::optional<FpEntry> FingerprintTable::get(rabin::Fingerprint fp) const {
  auto it = map_.find(fp);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void FingerprintTable::erase(rabin::Fingerprint fp) { map_.erase(fp); }

void FingerprintTable::clear() { map_.clear(); }

}  // namespace bytecache::cache
