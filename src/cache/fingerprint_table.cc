#include "cache/fingerprint_table.h"

#include <ios>

#include "cache/packet_store.h"
#include "util/check.h"

namespace bytecache::cache {

void FingerprintTable::probe_batch(std::span<const rabin::Anchor> anchors,
                                   std::span<ProbeResult> out) const {
  BC_CHECK(out.size() >= anchors.size())
      << "probe_batch result span too small: " << out.size() << " < "
      << anchors.size();
  const std::size_t n = anchors.size();
  // Prime the pipeline: the first kProbeAhead home slots start their way
  // up the cache hierarchy before any probe needs them.
  const std::size_t warm = n < kProbeAhead ? n : kProbeAhead;
  for (std::size_t i = 0; i < warm; ++i) map_.prefetch(anchors[i].fp);
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kProbeAhead < n) map_.prefetch(anchors[i + kProbeAhead].fp);
    const FpEntry* e = map_.find(anchors[i].fp);
    if (e == nullptr) {
      out[i].found = false;
    } else {
      out[i].entry = *e;
      out[i].found = true;
    }
  }
}

std::size_t FingerprintTable::audit(const PacketStore& store) const {
  if (!util::kAuditEnabled) return 0;
  std::size_t stale = 0;
  map_.for_each([&](std::uint64_t fp, const FpEntry& entry) {
    BC_AUDIT(entry.packet_id != 0 && entry.packet_id < store.next_id())
        << "fingerprint 0x" << std::hex << fp << std::dec
        << " references id " << entry.packet_id
        << " the store never assigned (next_id " << store.next_id() << ")";
    const CachedPacket* pkt = store.peek(entry.packet_id);
    if (pkt == nullptr) {
      ++stale;  // packet evicted since the entry was written: legal
      return;
    }
    BC_AUDIT(entry.offset < pkt->payload.size())
        << "fingerprint 0x" << std::hex << fp << std::dec << " offset "
        << entry.offset << " outside payload of " << pkt->payload.size()
        << " bytes (id " << entry.packet_id << ")";
  });
  return stale;
}

}  // namespace bytecache::cache
