// Runtime policy degradation (the paper's Section VII argument as a
// control loop).
//
// Figures 10-13 show the encoding schemes form a ladder: the more
// aggressive a scheme compresses, the more it amplifies channel loss into
// perceived loss.  k-distance saves the most bytes but suffers most under
// loss; Cache Flush barely amplifies loss but flushes away its savings;
// pass-through never amplifies at all.  The DegradationController walks a
// host pair along that ladder at runtime:
//
//     k-distance -> TCP-seq -> coded repair -> Cache Flush -> pass-through
//
// degrading one rung when the perceived-loss estimate stays above the
// rung's threshold, and upgrading one rung when it falls below a fraction
// of the target rung's threshold (hysteresis), with a minimum dwell
// between transitions so one burst cannot see-saw the policy.
//
// The coded-repair rung (DESIGN.md §13) keeps TCP-seq's encoding rules
// but adds FEC over the encoded stream, spending repair bandwidth to
// mask moderate loss before surrendering the cache to Cache Flush.  It
// exists only when the deployment can speak the v3 wire format: with
// `coded_rung` off, transitions skip straight over it and the ladder is
// bit-for-bit the historical four-level one.
#pragma once

#include <cstdint>

namespace bytecache::resilience {

/// Ladder rungs, ordered from most to least aggressive encoding.
enum class DegradationLevel : std::uint8_t {
  kKDistance = 0,
  kTcpSeq = 1,
  kCodedRepair = 2,
  kCacheFlush = 3,
  kPassthrough = 4,
};

inline constexpr int kDegradationLevels = 5;

[[nodiscard]] const char* to_string(DegradationLevel level);

struct DegradationConfig {
  /// Perceived loss above degrade_above[level] degrades to the next
  /// enabled rung.  Tuned against the Fig. 13 sweep (bench_resilience):
  /// k-distance holds to ~1.5% perceived loss, TCP-seq to ~4%, coded
  /// repair to ~12% (its R repairs per generation mask moderate loss),
  /// Cache Flush until loss is so heavy that encoding is pointless.
  double degrade_above[4] = {0.015, 0.04, 0.12, 0.25};

  /// Upgrade to the nearest enabled lower rung `t` when loss <
  /// degrade_above[t] * upgrade_fraction.  The gap between the two
  /// thresholds is the hysteresis band.
  double upgrade_fraction = 0.5;

  /// Minimum packets between transitions (both directions).
  std::uint64_t dwell_packets = 64;

  /// False: the kCodedRepair rung does not exist — transitions skip
  /// straight between kTcpSeq and kCacheFlush, reproducing the
  /// historical four-level ladder exactly.  The resilient policy clears
  /// this when DreParams::coded_repair is off (the wire cannot carry
  /// repairs a decoder will use).
  bool coded_rung = true;
};

class DegradationController {
 public:
  explicit DegradationController(const DegradationConfig& config = {});

  /// Feeds one packet's perceived-loss estimate; returns the level the
  /// packet should be encoded under.
  DegradationLevel on_sample(double perceived_loss);

  [[nodiscard]] DegradationLevel level() const { return level_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t degrades() const { return degrades_; }
  [[nodiscard]] std::uint64_t upgrades() const { return upgrades_; }
  [[nodiscard]] std::uint64_t transitions() const {
    return degrades_ + upgrades_;
  }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits).
  void audit() const;

 private:
  DegradationConfig config_;
  DegradationLevel level_ = DegradationLevel::kKDistance;
  std::uint64_t since_change_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t degrades_ = 0;
  std::uint64_t upgrades_ = 0;
};

}  // namespace bytecache::resilience
