// Runtime policy degradation (the paper's Section VII argument as a
// control loop).
//
// Figures 10-13 show the encoding schemes form a ladder: the more
// aggressive a scheme compresses, the more it amplifies channel loss into
// perceived loss.  k-distance saves the most bytes but suffers most under
// loss; Cache Flush barely amplifies loss but flushes away its savings;
// pass-through never amplifies at all.  The DegradationController walks a
// host pair along that ladder at runtime:
//
//     k-distance  ->  TCP-seq  ->  Cache Flush  ->  pass-through
//
// degrading one rung when the perceived-loss estimate stays above the
// rung's threshold, and upgrading one rung when it falls below a fraction
// of the previous rung's threshold (hysteresis), with a minimum dwell
// between transitions so one burst cannot see-saw the policy.
#pragma once

#include <cstdint>

namespace bytecache::resilience {

/// Ladder rungs, ordered from most to least aggressive encoding.
enum class DegradationLevel : std::uint8_t {
  kKDistance = 0,
  kTcpSeq = 1,
  kCacheFlush = 2,
  kPassthrough = 3,
};

[[nodiscard]] const char* to_string(DegradationLevel level);

struct DegradationConfig {
  /// Perceived loss above degrade_above[level] degrades level -> level+1.
  /// Tuned against the Fig. 13 sweep (bench_resilience): k-distance holds
  /// to ~1.5% perceived loss, TCP-seq to ~4%, Cache Flush until loss is
  /// so heavy that encoding is pointless.
  double degrade_above[3] = {0.015, 0.04, 0.25};

  /// Upgrade level -> level-1 when loss < degrade_above[level-1] *
  /// upgrade_fraction.  The gap between the two thresholds is the
  /// hysteresis band.
  double upgrade_fraction = 0.5;

  /// Minimum packets between transitions (both directions).
  std::uint64_t dwell_packets = 64;
};

class DegradationController {
 public:
  explicit DegradationController(const DegradationConfig& config = {});

  /// Feeds one packet's perceived-loss estimate; returns the level the
  /// packet should be encoded under.
  DegradationLevel on_sample(double perceived_loss);

  [[nodiscard]] DegradationLevel level() const { return level_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t degrades() const { return degrades_; }
  [[nodiscard]] std::uint64_t upgrades() const { return upgrades_; }
  [[nodiscard]] std::uint64_t transitions() const {
    return degrades_ + upgrades_;
  }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits).
  void audit() const;

 private:
  DegradationConfig config_;
  DegradationLevel level_ = DegradationLevel::kKDistance;
  std::uint64_t since_change_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t degrades_ = 0;
  std::uint64_t upgrades_ = 0;
};

}  // namespace bytecache::resilience
