// Epoch-stamped cache resynchronization (decoder side).
//
// The encoder bumps a 16-bit epoch every time it flushes its cache; v2
// encodings carry that epoch (core/wire.h).  The decoder adopts the
// newest epoch it sees and rejects references into older epochs, so a
// desynchronized cache produces clean bounded drops instead of silently
// wrong bytes or the Section IV circular-dependency stall (a lost packet
// whose retransmission is encoded against the lost packet itself).
//
// This class is the decoder's half of the recovery protocol: it watches
// the stream of decode outcomes and decides *when* to ask the encoder for
// a resync (a flush, i.e. an epoch bump) over the control channel
// (core::ControlMessage Type::kResyncRequest).  Requests are armed by a
// run of consecutive undecodable packets and rate-limited by exponential
// backoff measured in further desync drops — not in received packets,
// because during a full stall the only packets arriving at all are the
// RTO-paced undecodable retransmissions, and a packet-counted cooldown
// would outlast the transport's own give-up.  A bounded retry budget per
// adopted epoch keeps a dead control channel from making the decoder beg
// forever, and the schedule restarts whenever the failing epoch changes
// (a fresh desync the encoder may not know about).  Aggressive pacing is
// safe against flush storms because the encoder honors only requests
// naming its current epoch: once it flushes, every duplicate request for
// the old epoch is ignored.
#pragma once

#include <cstdint>

namespace bytecache::resilience {

/// Wrap-aware comparison of 16-bit epochs (serial-number arithmetic):
/// true iff `a` is ahead of `b` on the 16-bit circle.
[[nodiscard]] constexpr bool epoch_newer(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t d = static_cast<std::uint16_t>(a - b);
  return d != 0 && d < 0x8000;
}

/// How many bumps ahead `a` is of `b`; only meaningful when
/// !epoch_newer(b, a).
[[nodiscard]] constexpr std::uint16_t epoch_distance(std::uint16_t a,
                                                     std::uint16_t b) {
  return static_cast<std::uint16_t>(a - b);
}

struct EpochSyncConfig {
  /// Consecutive undecodable packets that arm a resync request.  A single
  /// drop is usually a plain channel loss the transport will retransmit;
  /// a run means the cache itself is desynchronized.
  std::uint32_t resync_after = 3;

  /// Desync drops to tolerate after a request before the next one may be
  /// sent; doubles per request up to backoff_max_drops.
  std::uint32_t backoff_initial_drops = 4;
  std::uint32_t backoff_max_drops = 256;

  /// Requests allowed per adopted epoch; the budget refills when the
  /// encoder's flush takes effect (a new epoch is adopted).
  std::uint32_t max_retries = 16;

  /// Largest forward epoch jump the decoder will adopt from a single
  /// CRC-verified packet.  The payload CRC does not cover the shim, so a
  /// bit flip in the epoch field can survive verification; bounding the
  /// jump keeps such a flip from poisoning the adopted epoch.  Legitimate
  /// jumps (several flushes between adoptions) are far smaller than this.
  std::uint16_t adopt_window = 64;
};

class EpochSynchronizer {
 public:
  explicit EpochSynchronizer(const EpochSyncConfig& config = {});

  /// A packet decoded successfully: the caches are in step again.
  void on_progress();

  /// An undecodable packet (missing fingerprint, stale reference, or CRC
  /// mismatch) carrying `packet_epoch`.  Returns true when a resync
  /// request should be sent now.
  [[nodiscard]] bool on_undecodable(std::uint16_t packet_epoch);

  /// A new epoch was adopted — the encoder flushed, recovery succeeded.
  void on_epoch_adopted();

  [[nodiscard]] std::uint32_t consecutive_undecodable() const {
    return consecutive_;
  }
  [[nodiscard]] std::uint32_t retries_used() const { return retries_; }
  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits).
  void audit() const;

 private:
  EpochSyncConfig config_;
  std::uint32_t consecutive_ = 0;  // undecodable run length
  std::uint32_t cooldown_ = 0;     // desync drops until the next request
  std::uint32_t backoff_ = 0;      // current backoff; 0 = none sent yet
  std::uint32_t retries_ = 0;      // requests charged to this epoch
  bool episode_active_ = false;    // a desync episode is in progress
  std::uint16_t episode_epoch_ = 0;  // epoch the current episode fails at
  std::uint64_t requests_ = 0;
  std::uint64_t suppressed_ = 0;   // armed but rate-limited or out of budget
};

}  // namespace bytecache::resilience
