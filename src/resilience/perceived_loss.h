// Online perceived-loss estimation (paper Section VII).
//
// The paper's central measurement is that TCP reacts not to the channel
// loss rate but to the *perceived* loss rate: channel drops plus packets
// the decoder discards as undecodable.  This estimator maintains that
// quantity online, per host pair, from the encoder gateway's vantage
// point:
//
//   - every data packet offered to the codec is a success sample,
//   - every channel drop reported by the link layer is a failure sample,
//   - every undecodable packet reported back by the decoder on the
//     control channel (core::ControlMessage Type::kLossReport) is a
//     failure sample.
//
// An EWMA over these {0,1} samples tracks the fraction of transmissions
// that never reached the application.  A packet that is eventually
// dropped contributes both its success sample (when offered) and a
// failure sample (when the drop is reported), so the estimate converges
// to p/(1+p) rather than p — an under-estimate of at most p^2, well
// inside the threshold granularity of the DegradationController that
// consumes it.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace bytecache::resilience {

struct LossEstimatorConfig {
  /// EWMA weight of one sample.  0.05 reacts within ~20 packets while
  /// still smoothing over individual bursts.
  double alpha = 0.05;
};

/// Per-host-pair estimator state.
struct FlowLossState {
  double ewma = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t channel_drops = 0;
  std::uint64_t undecodable = 0;
};

class PerceivedLossEstimator {
 public:
  explicit PerceivedLossEstimator(const LossEstimatorConfig& config = {});

  /// A data packet of `host_key` was offered to the codec (success sample).
  void on_offered(std::uint64_t host_key);

  /// The link reported dropping a packet of `host_key` (failure sample).
  void on_channel_drop(std::uint64_t host_key);

  /// The decoder reported `count` undecodable packets of `host_key`
  /// (failure samples).
  void on_undecodable(std::uint64_t host_key, std::uint32_t count = 1);

  /// Current perceived-loss estimate for `host_key`; 0 if never sampled.
  [[nodiscard]] double loss(std::uint64_t host_key) const;

  /// Worst estimate across all tracked host pairs (0 if none).
  [[nodiscard]] double max_loss() const;

  /// Full state for `host_key`, or nullptr if never sampled.
  [[nodiscard]] const FlowLossState* flow(std::uint64_t host_key) const;

  [[nodiscard]] std::size_t flows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t total_offered() const { return total_offered_; }
  [[nodiscard]] std::uint64_t total_channel_drops() const {
    return total_channel_drops_;
  }
  [[nodiscard]] std::uint64_t total_undecodable() const {
    return total_undecodable_;
  }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): every EWMA is a probability and the per-flow counters sum
  /// to the totals.
  void audit() const;

 private:
  void sample(std::uint64_t host_key, double outcome);

  LossEstimatorConfig config_;
  std::unordered_map<std::uint64_t, FlowLossState> flows_;
  std::uint64_t total_offered_ = 0;
  std::uint64_t total_channel_drops_ = 0;
  std::uint64_t total_undecodable_ = 0;
};

}  // namespace bytecache::resilience
