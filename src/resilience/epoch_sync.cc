#include "resilience/epoch_sync.h"

#include <algorithm>

#include "util/check.h"

namespace bytecache::resilience {

EpochSynchronizer::EpochSynchronizer(const EpochSyncConfig& config)
    : config_(config) {
  BC_CHECK(config_.resync_after >= 1) << "resync_after must be >= 1";
  BC_CHECK(config_.backoff_initial_drops >= 1 &&
           config_.backoff_initial_drops <= config_.backoff_max_drops)
      << "backoff bounds " << config_.backoff_initial_drops << ".."
      << config_.backoff_max_drops << " are inverted";
  BC_CHECK(config_.max_retries >= 1) << "max_retries must be >= 1";
}

void EpochSynchronizer::on_progress() {
  consecutive_ = 0;
  // A successful decode proves the caches realigned; if desync drops
  // resume afterwards that is a new episode and starts from a fresh
  // (un-backed-off) request schedule.
  episode_active_ = false;
}

bool EpochSynchronizer::on_undecodable(std::uint16_t packet_epoch) {
  if (!episode_active_ || packet_epoch != episode_epoch_) {
    // Drops started failing at a different epoch: a distinct desync the
    // encoder may not know about yet (e.g. the first post-flush packet
    // was itself lost, re-poisoning the fresh epoch).  The encoder
    // honors at most one request per epoch it is currently in, so
    // restarting the schedule per failing epoch cannot cause a flush
    // storm — duplicate requests for an already-bumped epoch are ignored.
    episode_active_ = true;
    episode_epoch_ = packet_epoch;
    consecutive_ = 0;
    cooldown_ = 0;
    backoff_ = 0;
  }
  ++consecutive_;
  if (consecutive_ < config_.resync_after) return false;
  if (cooldown_ > 0) {
    --cooldown_;
    ++suppressed_;
    return false;
  }
  if (retries_ >= config_.max_retries) {
    ++suppressed_;
    return false;
  }
  backoff_ = backoff_ == 0
                 ? config_.backoff_initial_drops
                 : std::min(backoff_ * 2, config_.backoff_max_drops);
  cooldown_ = backoff_;
  ++retries_;
  ++requests_;
  return true;
}

void EpochSynchronizer::on_epoch_adopted() {
  consecutive_ = 0;
  cooldown_ = 0;
  backoff_ = 0;
  retries_ = 0;
  episode_active_ = false;
}

void EpochSynchronizer::audit() const {
  if (!util::kAuditEnabled) return;
  BC_AUDIT(retries_ <= config_.max_retries)
      << retries_ << " retries exceed the budget " << config_.max_retries;
  BC_AUDIT(backoff_ <= config_.backoff_max_drops)
      << "backoff " << backoff_ << " exceeds the cap "
      << config_.backoff_max_drops;
  BC_AUDIT(retries_ <= requests_)
      << retries_ << " epoch-local retries > " << requests_
      << " lifetime requests";
}

}  // namespace bytecache::resilience
