#include "resilience/degradation.h"

#include "util/check.h"

namespace bytecache::resilience {

const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kKDistance: return "k_distance";
    case DegradationLevel::kTcpSeq: return "tcp_seq";
    case DegradationLevel::kCodedRepair: return "coded_repair";
    case DegradationLevel::kCacheFlush: return "cache_flush";
    case DegradationLevel::kPassthrough: return "passthrough";
  }
  return "?";
}

DegradationController::DegradationController(const DegradationConfig& config)
    : config_(config) {
  BC_CHECK(config_.degrade_above[0] > 0.0 &&
           config_.degrade_above[0] < config_.degrade_above[1] &&
           config_.degrade_above[1] < config_.degrade_above[2] &&
           config_.degrade_above[2] < config_.degrade_above[3])
      << "degradation thresholds must be positive and strictly ascending";
  BC_CHECK(config_.upgrade_fraction > 0.0 && config_.upgrade_fraction <= 1.0)
      << "upgrade_fraction " << config_.upgrade_fraction << " outside (0, 1]";
  BC_CHECK(config_.dwell_packets >= 1) << "dwell_packets must be >= 1";
}

DegradationLevel DegradationController::on_sample(double perceived_loss) {
  ++samples_;
  ++since_change_;
  if (since_change_ < config_.dwell_packets) return level_;
  const int rung = static_cast<int>(level_);
  const int coded = static_cast<int>(DegradationLevel::kCodedRepair);
  if (rung < kDegradationLevels - 1 &&
      perceived_loss > config_.degrade_above[rung]) {
    int target = rung + 1;
    if (target == coded && !config_.coded_rung) ++target;
    level_ = static_cast<DegradationLevel>(target);
    since_change_ = 0;
    ++degrades_;
  } else if (rung > 0) {
    int target = rung - 1;
    if (target == coded && !config_.coded_rung) --target;
    if (perceived_loss <
        config_.degrade_above[target] * config_.upgrade_fraction) {
      level_ = static_cast<DegradationLevel>(target);
      since_change_ = 0;
      ++upgrades_;
    }
  }
  return level_;
}

void DegradationController::audit() const {
  if (!util::kAuditEnabled) return;
  BC_AUDIT(static_cast<int>(level_) < kDegradationLevels)
      << "degradation level " << static_cast<int>(level_) << " off the ladder";
  BC_AUDIT(config_.coded_rung || level_ != DegradationLevel::kCodedRepair)
      << "sitting on the coded rung with coded_rung disabled";
  BC_AUDIT(degrades_ + upgrades_ <= samples_)
      << transitions() << " transitions from " << samples_ << " samples";
  // Every upgrade retraces a degrade, so upgrades never exceed degrades
  // by more than the ladder height.
  BC_AUDIT(upgrades_ <= degrades_)
      << upgrades_ << " upgrades > " << degrades_ << " degrades";
}

}  // namespace bytecache::resilience
