#include "resilience/perceived_loss.h"

#include "util/check.h"

namespace bytecache::resilience {

PerceivedLossEstimator::PerceivedLossEstimator(
    const LossEstimatorConfig& config)
    : config_(config) {
  BC_CHECK(config_.alpha > 0.0 && config_.alpha <= 1.0)
      << "loss-estimator alpha " << config_.alpha << " outside (0, 1]";
}

void PerceivedLossEstimator::sample(std::uint64_t host_key, double outcome) {
  FlowLossState& s = flows_[host_key];
  s.ewma = (1.0 - config_.alpha) * s.ewma + config_.alpha * outcome;
}

void PerceivedLossEstimator::on_offered(std::uint64_t host_key) {
  ++total_offered_;
  FlowLossState& s = flows_[host_key];
  ++s.offered;
  s.ewma = (1.0 - config_.alpha) * s.ewma;
}

void PerceivedLossEstimator::on_channel_drop(std::uint64_t host_key) {
  ++total_channel_drops_;
  ++flows_[host_key].channel_drops;
  sample(host_key, 1.0);
}

void PerceivedLossEstimator::on_undecodable(std::uint64_t host_key,
                                            std::uint32_t count) {
  total_undecodable_ += count;
  flows_[host_key].undecodable += count;
  for (std::uint32_t i = 0; i < count; ++i) sample(host_key, 1.0);
}

double PerceivedLossEstimator::loss(std::uint64_t host_key) const {
  auto it = flows_.find(host_key);
  return it == flows_.end() ? 0.0 : it->second.ewma;
}

double PerceivedLossEstimator::max_loss() const {
  double worst = 0.0;
  for (const auto& [key, s] : flows_) {
    if (s.ewma > worst) worst = s.ewma;
  }
  return worst;
}

const FlowLossState* PerceivedLossEstimator::flow(
    std::uint64_t host_key) const {
  auto it = flows_.find(host_key);
  return it == flows_.end() ? nullptr : &it->second;
}

void PerceivedLossEstimator::audit() const {
  if (!util::kAuditEnabled) return;
  std::uint64_t offered = 0;
  std::uint64_t channel = 0;
  std::uint64_t undecodable = 0;
  for (const auto& [key, s] : flows_) {
    BC_AUDIT(s.ewma >= 0.0 && s.ewma <= 1.0)
        << "EWMA " << s.ewma << " of host key " << key
        << " is not a probability";
    offered += s.offered;
    channel += s.channel_drops;
    undecodable += s.undecodable;
  }
  BC_AUDIT(offered == total_offered_)
      << "per-flow offered sum " << offered << " != total "
      << total_offered_;
  BC_AUDIT(channel == total_channel_drops_)
      << "per-flow channel-drop sum " << channel << " != total "
      << total_channel_drops_;
  BC_AUDIT(undecodable == total_undecodable_)
      << "per-flow undecodable sum " << undecodable << " != total "
      << total_undecodable_;
}

}  // namespace bytecache::resilience
