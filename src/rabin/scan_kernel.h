// Runtime-dispatched scan kernels: the data-plane entry point for
// filling per-position Rabin fingerprints (and SAMPLEBYTE membership
// masks) with instruction-level parallelism.
//
// The byte-serial roll loop in window.h is latency-bound: each step's
// push-table load feeds the next step's index, so a single lane runs at
// one L1 load latency per byte.  The kernels here break that chain by
// block-splitting the payload into K independent lanes, each warmed up
// with w from-scratch pushes at its block start.  The warm-up is what
// makes the split *bit-identical* to the serial scan: the rolled
// fingerprint at any position equals the from-scratch fingerprint of
// that window (an identity the equivalence tests pin), so every lane
// reproduces exactly the values the serial loop would have produced —
// there is no seam approximation to patch up.
#pragma once

//
// Tiers (runtime CPUID dispatch, scalar always compiled and always the
// oracle):
//   kScalar  the serial reference — identical code to the fused scan in
//            window.cc; what BYTECACHE_DISABLE_SIMD=1 selects.
//   kSse2    4 interleaved lanes targeting the x86-64 baseline (SSE2)
//            ISA.  The lane state intentionally lives in general-purpose
//            registers: SSE2 has no gather, so vectorizing the two table
//            lookups per step costs more in lane extract/insert traffic
//            than it saves, and the tier's entire win is breaking the
//            roll dependency chain across 4 lanes.
//   kAvx2    same block-split fill as kSse2 — a vpgatherqq-based vector
//            roll was implemented and measured ~1.8x SLOWER than the
//            4-lane GPR fill on the target Xeon (gather throughput loses
//            to two scalar L1 loads per step; see DESIGN.md §7) — plus a
//            genuinely vector SAMPLEBYTE membership path: 32 bytes per
//            step classified against the 256-bit sample bitmap with
//            nibble pshufb lookups.
//
// Selection (value sampling / MAXP / SAMPLEBYTE skip walk) stays scalar
// and runs as a second phase over the filled arrays — see window.cc.

#include <array>
#include <cstddef>
#include <cstdint>

#include "rabin/rabin.h"

namespace bytecache::rabin {

enum class ScanKernelKind : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// One kernel tier.  Plain function pointers (no std::function — this is
/// the hot path; see tools/lint.py bc-hotpath).
struct ScanKernel {
  ScanKernelKind kind;
  const char* name;  // "scalar" | "sse2" | "avx2" (stamped into bench JSON)

  /// Writes out[i] = fingerprint of the w-byte window starting at
  /// payload position i, for every full-window position i in
  /// [0, n - w].  Requires n >= w and out sized for n - w + 1 entries.
  void (*fill_fingerprints)(const RabinTables& tables, const std::uint8_t* p,
                            std::size_t n, Fingerprint* out);

  /// Sets bit i of masks[] iff byte p[i] is in the 256-entry membership
  /// set (SAMPLEBYTE sample set).  masks must hold (n + 63) / 64 words;
  /// bits past n are written zero.
  void (*member_mask)(const std::array<std::uint64_t, 4>& set,
                      const std::uint8_t* p, std::size_t n,
                      std::uint64_t* masks);
};

/// The dispatched kernel: best tier the CPU supports, unless overridden
/// by environment (`BYTECACHE_DISABLE_SIMD=1` forces scalar;
/// `BYTECACHE_SCAN_KERNEL=scalar|sse2|avx2` pins a tier, clamped to what
/// the CPU supports).  Detection runs once and is cached; call
/// refresh_scan_kernel() after changing the environment (tests).
[[nodiscard]] const ScanKernel& scan_kernel();

/// A specific tier, for equivalence tests and benches.  Requesting an
/// unavailable tier returns the best available tier below it.
[[nodiscard]] const ScanKernel& scan_kernel(ScanKernelKind kind);

/// True if `kind` is compiled in and supported by this CPU.
[[nodiscard]] bool scan_kernel_available(ScanKernelKind kind);

/// Re-runs CPUID + environment detection (after setenv in tests).
void refresh_scan_kernel();

/// RAII override of the dispatched kernel for tests/benches.  Not
/// thread-safe: construct before spawning workers.
class ScopedScanKernel {
 public:
  explicit ScopedScanKernel(ScanKernelKind kind);
  ~ScopedScanKernel();
  ScopedScanKernel(const ScopedScanKernel&) = delete;
  ScopedScanKernel& operator=(const ScopedScanKernel&) = delete;

 private:
  const ScanKernel* prev_;
};

}  // namespace bytecache::rabin
