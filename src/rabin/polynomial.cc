#include "rabin/polynomial.h"

#include <bit>

namespace bytecache::rabin {
namespace {

/// Degree of a nonzero 64-bit polynomial.
int degree(std::uint64_t p) { return 63 - std::countl_zero(p); }

/// Remainder of a 128-bit polynomial divided by a nonzero 64-bit polynomial.
__extension__ typedef unsigned __int128 uint128;

std::uint64_t mod128(uint128 num, std::uint64_t den) {
  const int dd = degree(den);
  // Reduce bits from the top down to below deg(den).
  for (int bit = 127; bit >= dd; --bit) {
    if ((num >> bit) & 1) {
      num ^= static_cast<uint128>(den) << (bit - dd);
    }
  }
  return static_cast<std::uint64_t>(num);
}

/// GCD of two 64-bit polynomials (Euclid).
std::uint64_t gcd64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    // a mod b
    int db = degree(b);
    std::uint64_t r = a;
    while (r != 0 && degree(r) >= db) {
      r ^= b << (degree(r) - db);
    }
    a = b;
    b = r;
  }
  return a;
}

}  // namespace

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t q) {
  std::uint64_t res = 0;
  while (b != 0) {
    if (b & 1) res ^= a;
    b >>= 1;
    a = mul_x(a, q);
  }
  return res;
}

std::uint64_t pow2k(std::uint64_t a, unsigned k, std::uint64_t q) {
  for (unsigned i = 0; i < k; ++i) a = mulmod(a, a, q);
  return a;
}

std::uint64_t gcd_with_modulus(std::uint64_t q, std::uint64_t r) {
  if (r == 0) return 0;  // gcd(P, 0) = P, which has degree 64: report 0 (the
                         // caller only checks for == 1).
  // First reduce P = x^64 + q modulo r, then run the 64-bit Euclid loop.
  const uint128 p =
      (static_cast<uint128>(1) << 64) | static_cast<uint128>(q);
  std::uint64_t p_mod_r = mod128(p, r);
  return gcd64(r, p_mod_r);
}

bool is_irreducible(std::uint64_t q) {
  constexpr std::uint64_t x = 2;  // the polynomial "x"
  // Condition 1: x^(2^64) == x (mod P).
  if (pow2k(x, 64, q) != x) return false;
  // Condition 2: gcd(P, x^(2^32) + x) == 1.
  const std::uint64_t t = pow2k(x, 32, q) ^ x;
  return gcd_with_modulus(q, t) == 1;
}

std::uint64_t find_irreducible(std::uint64_t seed) {
  // x^64 + q must have a constant term (else divisible by x) and an odd
  // number of terms overall (else divisible by x + 1).
  std::uint64_t state = seed;
  for (;;) {
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    ++state;
    std::uint64_t q = z | 1;  // ensure constant term
    if ((std::popcount(q) + 1) % 2 == 0) q ^= 2;  // make total terms odd
    if (is_irreducible(q)) return q;
  }
}

}  // namespace bytecache::rabin
