// Fast table-driven Rabin fingerprinting.
//
// For a byte string b0..b(n-1), the fingerprint is
//     fp(b) = ( x^(8n) + sum_i b_i * x^(8*(n-1-i)) ) mod P,   P = x^64 + q
// i.e. the bytes are the coefficients of a polynomial over GF(2), most
// significant byte first, with an implicit leading 1 byte.  The leading
// term matters: without it, a window of <= 8 bytes has degree < 64, is
// never reduced, and the "fingerprint" is just the raw bytes — its low
// bits mirror the last character, which ruins value sampling on ASCII
// payloads.  With it, every full window passes through the modulus and
// the bits are well mixed for any window size.
//
// Appending a byte is still
//     fp' = (fp * x^8 + b) mod P
// (the leading term shifts along with the content), evaluated by the push
// table in one XOR; removing the oldest byte of a w-byte window XORs out
// the correction ((x^8 + (b XOR 1)) * x^(8w)) mod P via the out table.
// Both tables are derived from the verified irreducible modulus in
// polynomial.h.
#pragma once

#include <array>
#include <cstdint>

#include "rabin/polynomial.h"
#include "util/bytes.h"

namespace bytecache::rabin {

using Fingerprint = std::uint64_t;

/// Initial fingerprint value: the polynomial "1", which after n pushes
/// becomes the leading x^(8n) term.
inline constexpr Fingerprint kEmptyFingerprint = 1;

/// Precomputed tables for one (modulus, window-size) pair.
///
/// Immutable after construction and shareable between any number of
/// fingerprinters; construction costs a few microseconds.
class RabinTables {
 public:
  /// `window` is the width w (bytes) used by the rolling remove operation.
  explicit RabinTables(std::size_t window, std::uint64_t poly = kDefaultPoly);

  /// Appends byte `b` to fingerprint `fp`:  (fp * x^8 + b) mod P.
  [[nodiscard]] Fingerprint push(Fingerprint fp, std::uint8_t b) const {
    return ((fp << 8) | b) ^ push_[fp >> 56];
  }

  /// Rolls the window: appends `in` and removes `out` (the byte that was
  /// pushed exactly `window` pushes ago).  The correction also restores
  /// the leading term to x^(8*window).
  [[nodiscard]] Fingerprint roll(Fingerprint fp, std::uint8_t out,
                                 std::uint8_t in) const {
    return push(fp, in) ^ out_[out];
  }

  /// Fingerprint of an arbitrary byte string, computed from scratch.
  [[nodiscard]] Fingerprint of(util::BytesView data) const;

  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] std::uint64_t poly() const { return poly_; }

  /// Raw table access for the SIMD scan kernels (scan_kernel.h), which
  /// gather from the tables directly instead of going through push/roll.
  [[nodiscard]] const std::uint64_t* push_table() const {
    return push_.data();
  }
  [[nodiscard]] const std::uint64_t* out_table() const { return out_.data(); }

 private:
  std::array<std::uint64_t, 256> push_;  // (t * x^64) mod P for top byte t
  std::array<std::uint64_t, 256> out_;   // (b * x^(8w)) mod P
  std::size_t window_;
  std::uint64_t poly_;
};

/// True if `fp` is a *selected* fingerprint: its last `bits` bits are zero.
/// The paper uses bits = 4, retaining 1/16 of positions (Section III-B).
[[nodiscard]] constexpr bool selected(Fingerprint fp, unsigned bits) {
  return (fp & ((std::uint64_t{1} << bits) - 1)) == 0;
}

}  // namespace bytecache::rabin
