// AVX2 tier of the scan kernels (see scan_kernel.h for the design).
// This translation unit is the only one that emits AVX2 instructions;
// every function carries a target("avx2") attribute so the file builds
// without -mavx2 and the library as a whole stays baseline-ISA.
// Dispatch in scan_kernel.cc guarantees these functions are only ever
// called after __builtin_cpu_supports("avx2").
//
// Only SAMPLEBYTE membership lives here: the fingerprint fill is shared
// with the sse2 tier (block-split GPR lanes) because a vpgatherqq-based
// vector roll measured ~1.8x slower on the target Xeon — the two table
// lookups per step come straight from L1 and beat gather throughput.

#include "rabin/scan_kernel.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace bytecache::rabin::detail {

// SAMPLEBYTE membership, 32 bytes per step via nibble decomposition:
// byte b = (h << 4) | l is in the set iff bit h of row[l] is set, where
// the 16 rows are split into two pshufb tables (h in 0..7 and 8..15).
__attribute__((target("avx2"))) void mask_avx2(
    const std::array<std::uint64_t, 4>& set, const std::uint8_t* p,
    std::size_t n, std::uint64_t* masks) {
  alignas(16) std::uint8_t rows0[16];
  alignas(16) std::uint8_t rows1[16];
  for (int l = 0; l < 16; ++l) {
    std::uint8_t r0 = 0, r1 = 0;
    for (int h = 0; h < 8; ++h) {
      const int b0 = (h << 4) | l;
      const int b1 = ((h + 8) << 4) | l;
      if ((set[static_cast<std::size_t>(b0) >> 6] >> (b0 & 63)) & 1u) {
        r0 |= static_cast<std::uint8_t>(1u << h);
      }
      if ((set[static_cast<std::size_t>(b1) >> 6] >> (b1 & 63)) & 1u) {
        r1 |= static_cast<std::uint8_t>(1u << h);
      }
    }
    rows0[l] = r0;
    rows1[l] = r1;
  }
  const __m256i tbl0 = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(rows0)));
  const __m256i tbl1 = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(rows1)));
  const __m256i bittbl = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64,
                    -128));
  const __m256i lomask = _mm256_set1_epi8(0x0F);
  const __m256i seven = _mm256_set1_epi8(7);

  std::size_t i = 0;
  std::size_t word = 0;
  for (; i + 64 <= n; i += 64, ++word) {
    std::uint64_t m = 0;
    for (int half = 0; half < 2; ++half) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(p + i + 32 * half));
      const __m256i l = _mm256_and_si256(v, lomask);
      const __m256i h = _mm256_and_si256(_mm256_srli_epi16(v, 4), lomask);
      const __m256i r0 = _mm256_shuffle_epi8(tbl0, l);
      const __m256i r1 = _mm256_shuffle_epi8(tbl1, l);
      const __m256i use1 = _mm256_cmpgt_epi8(h, seven);  // h >= 8
      const __m256i rows = _mm256_blendv_epi8(r0, r1, use1);
      const __m256i bit =
          _mm256_shuffle_epi8(bittbl, _mm256_and_si256(h, seven));
      const __m256i hit = _mm256_cmpeq_epi8(_mm256_and_si256(rows, bit), bit);
      const auto mm = static_cast<std::uint32_t>(_mm256_movemask_epi8(hit));
      m |= static_cast<std::uint64_t>(mm) << (32 * half);
    }
    masks[word] = m;
  }
  if (i < n) {
    std::uint64_t m = 0;
    for (std::size_t k = i; k < n; ++k) {
      const std::uint8_t b = p[k];
      const std::uint64_t bit = (set[b >> 6] >> (b & 63u)) & 1u;
      m |= bit << (k - i);
    }
    masks[word] = m;
  }
}

}  // namespace bytecache::rabin::detail

#endif  // defined(__x86_64__) || defined(__i386__)
