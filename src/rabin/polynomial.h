// Arithmetic over GF(2)[x] modulo a degree-64 polynomial.
//
// Rabin fingerprints (Rabin, 1981) treat a byte string as a polynomial over
// GF(2) and reduce it modulo a fixed irreducible polynomial P.  We fix
// deg(P) = 64 and represent P = x^64 + q(x) by the 64-bit value q; residues
// are polynomials of degree < 64 stored in a uint64_t (bit i = coefficient
// of x^i).
//
// This header provides the reference (slow) arithmetic used to build the
// fast byte-at-a-time tables in rabin.h, plus a Rabin irreducibility test so
// the chosen modulus can be *verified* rather than trusted.
#pragma once

#include <cstdint>

namespace bytecache::rabin {

/// The default modulus: x^64 + q with q below.  Irreducibility is verified
/// by is_irreducible() in the unit tests (and can be re-derived with
/// find_irreducible()).
inline constexpr std::uint64_t kDefaultPoly = 0xFB2BF4996809BAF5ull;

/// Multiplies residue `a` by x modulo x^64 + q.
[[nodiscard]] constexpr std::uint64_t mul_x(std::uint64_t a, std::uint64_t q) {
  const std::uint64_t carry = a >> 63;
  a <<= 1;
  if (carry != 0) a ^= q;
  return a;
}

/// Multiplies two residues modulo x^64 + q (shift-and-add "Russian peasant").
[[nodiscard]] std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t q);

/// Raises residue `a` to the 2^k-th power modulo x^64 + q (k squarings).
[[nodiscard]] std::uint64_t pow2k(std::uint64_t a, unsigned k,
                                  std::uint64_t q);

/// Polynomial GCD of (x^64 + q) and residue r (degree < 64).
/// Returns the GCD as a 64-bit polynomial (degree < 64 — the GCD of P with a
/// nonzero lower-degree polynomial always has degree < 64).
[[nodiscard]] std::uint64_t gcd_with_modulus(std::uint64_t q, std::uint64_t r);

/// Rabin's irreducibility test for P = x^64 + q.
/// P is irreducible iff x^(2^64) == x (mod P) and gcd(P, x^(2^32) + x) = 1
/// (64 = 2^6 has the single prime divisor 2).
[[nodiscard]] bool is_irreducible(std::uint64_t q);

/// Deterministically searches for an irreducible x^64 + q starting from a
/// seed; used by tests and available if a different modulus is wanted.
[[nodiscard]] std::uint64_t find_irreducible(std::uint64_t seed);

}  // namespace bytecache::rabin
