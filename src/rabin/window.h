// Rolling-window fingerprinter and whole-payload scanner.
//
// The encoder slides a w-byte window over each packet payload (paper
// Fig. 2, procedure B) and needs the fingerprint at every byte position.
// This is the single hottest loop of the data plane, so `scan` is a
// template that inlines its sink into the roll loop (one push-table and
// one out-table lookup plus XORs per byte — see rabin.h) and reads the
// outgoing byte straight from the payload instead of maintaining a ring.
// A thin type-erased overload (`ScanSink`) remains for callers that need
// a stable non-template entry point; it pays one indirect call per
// position and exists mostly as the reference the equivalence tests pin
// the inlined path against.
//
// RollingWindow serves the incremental (byte-at-a-time) use case where
// the payload is not all in memory; its ring is sized to the next power
// of two so indexing is a mask, not a division.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "rabin/rabin.h"
#include "util/bytes.h"

namespace bytecache::rabin {

/// Incremental w-byte rolling fingerprint (ring-buffered; use `scan` when
/// the whole payload is in memory).
class RollingWindow {
 public:
  explicit RollingWindow(const RabinTables& tables);

  /// Feeds one byte; returns true once at least w bytes have been fed,
  /// i.e. fingerprint() covers a full window.
  bool feed(std::uint8_t b) {
    if (fed_ < window_) {
      fp_ = tables_->push(fp_, b);
    } else {
      // The byte fed exactly `window_` positions ago is still in the
      // ring: capacity >= window_, so it has not been overwritten yet.
      fp_ = tables_->roll(fp_, ring_[(fed_ - window_) & mask_], b);
    }
    ring_[fed_ & mask_] = b;
    ++fed_;
    return fed_ >= window_;
  }

  /// Fingerprint of the last min(fed, w) bytes.
  [[nodiscard]] Fingerprint fingerprint() const { return fp_; }

  /// True once a full window has been fed.
  [[nodiscard]] bool full() const { return fed_ >= window_; }

  /// Resets to the empty state.
  void reset();

 private:
  const RabinTables* tables_;
  std::vector<std::uint8_t> ring_;  // bit_ceil(window) bytes
  std::size_t mask_ = 0;            // ring_.size() - 1 (power of two)
  std::size_t window_ = 0;
  std::size_t fed_ = 0;  // total bytes fed
  Fingerprint fp_ = kEmptyFingerprint;
};

/// A selected fingerprint anchored in a payload.
struct Anchor {
  /// Offset of the *first byte* of the window within the payload.
  std::uint16_t offset;
  Fingerprint fp;

  friend bool operator==(const Anchor&, const Anchor&) = default;
};

/// Scans `payload` and invokes `sink(offset, fp)` for every full window
/// position (offset = start of window, 0-based).  Returns the number of
/// windows visited.  The sink is inlined into the roll loop; it must not
/// retain references into the scan state.
template <typename Sink>
inline std::size_t scan(const RabinTables& tables, util::BytesView payload,
                        Sink&& sink) {
  const std::size_t w = tables.window();
  const std::size_t n = payload.size();
  if (n < w) return 0;
  const std::uint8_t* p = payload.data();
  Fingerprint fp = kEmptyFingerprint;
  for (std::size_t i = 0; i < w; ++i) fp = tables.push(fp, p[i]);
  sink(std::size_t{0}, fp);
  for (std::size_t i = w; i < n; ++i) {
    fp = tables.roll(fp, p[i - w], p[i]);
    sink(i - w + 1, fp);
  }
  return n - w + 1;
}

/// Non-owning type-erased sink (function_ref-style): two words, no
/// allocation, no virtual dispatch beyond one function-pointer call.
class ScanSink {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, ScanSink>>>
  ScanSink(F&& f)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        fn_([](void* ctx, std::size_t off, Fingerprint fp) {
          (*static_cast<std::remove_reference_t<F>*>(ctx))(off, fp);
        }) {}

  void operator()(std::size_t off, Fingerprint fp) const {
    fn_(ctx_, off, fp);
  }

 private:
  void* ctx_;
  void (*fn_)(void*, std::size_t, Fingerprint);
};

/// Type-erased scan for callers that cannot (or should not) instantiate
/// the template; one out-of-line indirect call per window position.
std::size_t scan_erased(const RabinTables& tables, util::BytesView payload,
                        ScanSink sink);

/// Reusable buffers for the two-phase anchor-selection paths (kernel
/// fill + scalar select — see scan_kernel.h).  Encoder and Decoder each
/// own one, so steady-state selection never touches the allocator.  With
/// the scalar kernel dispatched, selection runs fused (the original
/// single-pass code) and these buffers stay untouched.
struct ScanScratch {
  std::vector<Fingerprint> fps;          // per-position fingerprints
  std::vector<std::uint64_t> masks;      // SAMPLEBYTE membership bitset
  std::vector<std::uint32_t> positions;  // SAMPLEBYTE anchor positions
};

/// Convenience: returns all *selected* anchors of `payload` (last
/// `select_bits` bits of the fingerprint are zero) — MODP value sampling,
/// the paper's scheme.  The `_into` form clears and refills `out`,
/// reusing its capacity (the encoder's per-packet scratch buffer); the
/// ScanScratch overloads additionally reuse the kernel fill buffers (the
/// scratch-less forms allocate one per call).
void selected_anchors_into(const RabinTables& tables, util::BytesView payload,
                           unsigned select_bits, std::vector<Anchor>& out);
void selected_anchors_into(const RabinTables& tables, util::BytesView payload,
                           unsigned select_bits, std::vector<Anchor>& out,
                           ScanScratch& scan);
[[nodiscard]] std::vector<Anchor> selected_anchors(const RabinTables& tables,
                                                   util::BytesView payload,
                                                   unsigned select_bits);

/// Reusable buffer for selected_anchors_maxp_into: the monotonic-maximum
/// ring of (position, fingerprint) candidates — at most p+1 entries live
/// transiently, so selection runs fused into the scan without
/// materializing a per-position fingerprint vector.
struct MaxpScratch {
  struct Candidate {
    std::uint32_t idx;
    Fingerprint fp;
  };
  std::vector<Candidate> ring;
};

/// MAXP / winnowing selection (Anand et al., SIGMETRICS 2009; Schleimer
/// et al.'s winnowing): every sliding window of `p` consecutive positions
/// contributes its maximum-fingerprint position (rightmost on ties).
/// Unlike value sampling this GUARANTEES an anchor in every p positions —
/// no unlucky gaps, and byte runs cannot go unanchored — at an expected
/// density of 2/(p+1).
void selected_anchors_maxp_into(const RabinTables& tables,
                                util::BytesView payload, std::size_t p,
                                std::vector<Anchor>& out,
                                MaxpScratch& scratch);
void selected_anchors_maxp_into(const RabinTables& tables,
                                util::BytesView payload, std::size_t p,
                                std::vector<Anchor>& out, MaxpScratch& scratch,
                                ScanScratch& scan);
[[nodiscard]] std::vector<Anchor> selected_anchors_maxp(
    const RabinTables& tables, util::BytesView payload, std::size_t p);

/// SAMPLEBYTE selection (EndRE, NSDI 2010 — the computation-saving
/// optimization the paper's Section III alludes to): a position is an
/// anchor candidate iff its first byte is in a fixed 256-entry sample
/// set (|set| = 256/period); after each anchor the scan skips `skip`
/// bytes.  Rabin fingerprints are computed ONLY at anchors (one of(w)
/// per anchor instead of one push per byte), trading a little match
/// coverage for a large CPU saving — see bench_micro_rabin.
void selected_anchors_samplebyte_into(const RabinTables& tables,
                                      util::BytesView payload, unsigned period,
                                      std::size_t skip,
                                      std::vector<Anchor>& out);
void selected_anchors_samplebyte_into(const RabinTables& tables,
                                      util::BytesView payload, unsigned period,
                                      std::size_t skip, std::vector<Anchor>& out,
                                      ScanScratch& scan);
[[nodiscard]] std::vector<Anchor> selected_anchors_samplebyte(
    const RabinTables& tables, util::BytesView payload, unsigned period,
    std::size_t skip);

}  // namespace bytecache::rabin
