// Rolling-window fingerprinter and whole-payload scanner.
//
// The encoder slides a w-byte window over each packet payload (paper
// Fig. 2, procedure B) and needs the fingerprint at every byte position.
// RollingWindow maintains the ring buffer; FingerprintScanner produces the
// full (position, fingerprint) sequence for a payload in one pass.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rabin/rabin.h"
#include "util/bytes.h"

namespace bytecache::rabin {

/// Incremental w-byte rolling fingerprint.
class RollingWindow {
 public:
  explicit RollingWindow(const RabinTables& tables);

  /// Feeds one byte; returns true once at least w bytes have been fed,
  /// i.e. fingerprint() covers a full window.
  bool feed(std::uint8_t b);

  /// Fingerprint of the last min(fed, w) bytes.
  [[nodiscard]] Fingerprint fingerprint() const { return fp_; }

  /// True once a full window has been fed.
  [[nodiscard]] bool full() const { return fed_ >= ring_.size(); }

  /// Resets to the empty state.
  void reset();

 private:
  const RabinTables& tables_;
  std::vector<std::uint8_t> ring_;
  std::size_t head_ = 0;   // index of the oldest byte
  std::size_t fed_ = 0;    // total bytes fed
  Fingerprint fp_ = kEmptyFingerprint;
};

/// A selected fingerprint anchored in a payload.
struct Anchor {
  /// Offset of the *first byte* of the window within the payload.
  std::uint16_t offset;
  Fingerprint fp;
};

/// Scans `payload` and invokes `sink(offset, fp)` for every full window
/// position (offset = start of window, 0-based).  Returns the number of
/// windows visited.
std::size_t scan(const RabinTables& tables, util::BytesView payload,
                 const std::function<void(std::size_t, Fingerprint)>& sink);

/// Convenience: returns all *selected* anchors of `payload` (last
/// `select_bits` bits of the fingerprint are zero) — MODP value sampling,
/// the paper's scheme.
[[nodiscard]] std::vector<Anchor> selected_anchors(const RabinTables& tables,
                                                   util::BytesView payload,
                                                   unsigned select_bits);

/// MAXP / winnowing selection (Anand et al., SIGMETRICS 2009; Schleimer
/// et al.'s winnowing): every sliding window of `p` consecutive positions
/// contributes its maximum-fingerprint position (rightmost on ties).
/// Unlike value sampling this GUARANTEES an anchor in every p positions —
/// no unlucky gaps, and byte runs cannot go unanchored — at an expected
/// density of 2/(p+1).
[[nodiscard]] std::vector<Anchor> selected_anchors_maxp(
    const RabinTables& tables, util::BytesView payload, std::size_t p);

/// SAMPLEBYTE selection (EndRE, NSDI 2010 — the computation-saving
/// optimization the paper's Section III alludes to): a position is an
/// anchor candidate iff its first byte is in a fixed 256-entry sample
/// set (|set| = 256/period); after each anchor the scan skips `skip`
/// bytes.  Rabin fingerprints are computed ONLY at anchors (one of(w)
/// per anchor instead of one push per byte), trading a little match
/// coverage for a large CPU saving — see bench_micro_rabin.
[[nodiscard]] std::vector<Anchor> selected_anchors_samplebyte(
    const RabinTables& tables, util::BytesView payload, unsigned period,
    std::size_t skip);

}  // namespace bytecache::rabin
