#include "rabin/rabin.h"

namespace bytecache::rabin {

RabinTables::RabinTables(std::size_t window, std::uint64_t poly)
    : window_(window), poly_(poly) {
  // push_[t] = (t * x^64) mod P.  After `fp << 8`, the former top byte t has
  // logically been promoted to coefficients of x^64..x^71; push_[t] is their
  // reduction (computed for t at x^64, which the shift implies exactly).
  for (unsigned t = 0; t < 256; ++t) {
    std::uint64_t v = t;
    for (int i = 0; i < 64; ++i) v = mul_x(v, poly);
    push_[t] = v;
  }
  // After push(fp_w, new) the stale state is
  //     x^(8(w+1)) + b0*x^(8w) + rest*x^8 + new      (b0 = outgoing byte)
  // and the rolled window's fingerprint must be
  //     x^(8w)     +             rest*x^8 + new.
  // Their XOR is (x^8 + (b0 XOR 1)) * x^(8w); out_[b0] precomputes its
  // reduction.  The "XOR 1" folds the two leading-term corrections into
  // the same table entry.
  for (unsigned b = 0; b < 256; ++b) {
    std::uint64_t v = 0x100u ^ (b ^ 1u);
    for (std::size_t i = 0; i < 8 * window; ++i) v = mul_x(v, poly);
    out_[b] = v;
  }
}

Fingerprint RabinTables::of(util::BytesView data) const {
  Fingerprint fp = kEmptyFingerprint;
  for (std::uint8_t b : data) fp = push(fp, b);
  return fp;
}

}  // namespace bytecache::rabin
