#include "rabin/window.h"

#include <array>
#include <bit>

#include "rabin/scan_kernel.h"
#include "util/rng.h"

namespace bytecache::rabin {

RollingWindow::RollingWindow(const RabinTables& tables)
    : tables_(&tables),
      ring_(std::bit_ceil(tables.window()), 0),
      mask_(ring_.size() - 1),
      window_(tables.window()) {}

void RollingWindow::reset() {
  fed_ = 0;
  fp_ = kEmptyFingerprint;
  // ring contents are irrelevant until refilled
}

std::size_t scan_erased(const RabinTables& tables, util::BytesView payload,
                        ScanSink sink) {
  return scan(tables, payload, sink);
}

// The selection functions below have two code paths with pinned-identical
// output (tests/simd_kernel_test.cc) — except MAXP, which always runs
// fused (see the comment in selected_anchors_maxp_into):
//   scalar kernel  the original fused single pass — scan() inlines the
//                  selection into the roll loop.  This is the oracle and
//                  the BYTECACHE_DISABLE_SIMD=1 fallback.
//   SIMD kernels   two phases: the dispatched kernel fills a
//                  per-position fingerprint array (K independent lanes,
//                  each warmed up from scratch so lane values are
//                  bit-identical to the serial roll), then selection
//                  runs scalar over the array.  Selection decouples from
//                  the byte-serial hash exactly as in Anand et al.
//                  (SIGMETRICS 2009), which is what makes the split pay.

void selected_anchors_into(const RabinTables& tables, util::BytesView payload,
                           unsigned select_bits, std::vector<Anchor>& out,
                           ScanScratch& scan_ws) {
  out.clear();
  // Expected yield is one anchor per 2^select_bits positions; the small
  // slack keeps a typical MSS payload from ever reallocating.
  out.reserve((payload.size() >> select_bits) + 8);
  const std::size_t w = tables.window();
  if (payload.size() < w) return;
  const ScanKernel& kernel = scan_kernel();
  if (kernel.kind == ScanKernelKind::kScalar) {
    scan(tables, payload, [&](std::size_t off, Fingerprint fp) {
      if (selected(fp, select_bits)) {
        out.push_back(Anchor{static_cast<std::uint16_t>(off), fp});
      }
    });
    return;
  }
  const std::size_t positions = payload.size() - w + 1;
  scan_ws.fps.resize(positions);
  kernel.fill_fingerprints(tables, payload.data(), payload.size(),
                           scan_ws.fps.data());
  const Fingerprint* fps = scan_ws.fps.data();
  for (std::size_t i = 0; i < positions; ++i) {
    if (selected(fps[i], select_bits)) {
      out.push_back(Anchor{static_cast<std::uint16_t>(i), fps[i]});
    }
  }
}

void selected_anchors_into(const RabinTables& tables, util::BytesView payload,
                           unsigned select_bits, std::vector<Anchor>& out) {
  ScanScratch scan_ws;
  selected_anchors_into(tables, payload, select_bits, out, scan_ws);
}

std::vector<Anchor> selected_anchors(const RabinTables& tables,
                                     util::BytesView payload,
                                     unsigned select_bits) {
  std::vector<Anchor> out;
  selected_anchors_into(tables, payload, select_bits, out);
  return out;
}

namespace {

// The MAXP monotonic-queue step, shared verbatim by the fused and
// two-phase paths so their selection logic cannot drift.  See the block
// comment in selected_anchors_maxp_into for the queue invariants.
struct MaxpQueue {
  MaxpScratch::Candidate* ring;
  std::size_t mask;
  std::size_t p;
  std::size_t head = 0, tail = 0;  // queue occupies [head, tail)
  static constexpr std::uint32_t kNoneEmitted = 0xFFFFFFFFu;
  std::uint32_t last_emitted = kNoneEmitted;

  void step(std::size_t i, Fingerprint fp, std::vector<Anchor>& out) {
    while (head != tail && ring[(tail - 1) & mask].fp <= fp) --tail;
    ring[tail & mask] =
        MaxpScratch::Candidate{static_cast<std::uint32_t>(i), fp};
    ++tail;
    if (ring[head & mask].idx + p <= i) ++head;
    if (i + 1 >= p && ring[head & mask].idx != last_emitted) {
      last_emitted = ring[head & mask].idx;
      out.push_back(Anchor{static_cast<std::uint16_t>(last_emitted),
                           ring[head & mask].fp});
    }
  }
};

}  // namespace

void selected_anchors_maxp_into(const RabinTables& tables,
                                util::BytesView payload, std::size_t p,
                                std::vector<Anchor>& out, MaxpScratch& scratch,
                                ScanScratch& scan_ws) {
  out.clear();
  const std::size_t w = tables.window();
  if (payload.size() < w || p == 0) return;
  const std::size_t positions = payload.size() - w + 1;
  out.reserve(2 * positions / (p + 1) + 8);  // expected density 2/(p+1)

  // Sliding-window maximum via a monotonic queue of candidates (front =
  // current maximum; rightmost wins ties for content-defined stability).
  // The queue lives in a power-of-two ring indexed by monotone head/tail
  // counters — no deque, no modulo.  It transiently holds p+1 entries
  // (the new candidate is pushed before the expired front is evicted),
  // so the ring must be sized for p+1 or a power-of-two p would
  // overwrite the live front on push.  Each window [i-p+1, i] emits its
  // argmax; consecutive windows usually share it, so duplicates are
  // skipped.
  std::vector<MaxpScratch::Candidate>& ring = scratch.ring;
  const std::size_t cap = std::bit_ceil(p + 1);
  if (ring.size() < cap) ring.resize(cap);
  MaxpQueue queue{ring.data(), cap - 1, p};

  // MAXP stays fused under EVERY kernel tier: the monotonic-queue step
  // is branch-heavy (its mispredictions dominate) and overlaps the roll
  // loop's load-latency chain essentially for free, so a separate
  // kernel-fill pass was measured net SLOWER (the fill win is smaller
  // than the cost of running the queue as a second serial pass) — see
  // bench_micro_rabin's BM_SelectedAnchorsMaxp vs ...MaxpScalar.
  (void)scan_ws;
  scan(tables, payload, [&](std::size_t i, Fingerprint fp) {
    queue.step(i, fp, out);
  });
}

void selected_anchors_maxp_into(const RabinTables& tables,
                                util::BytesView payload, std::size_t p,
                                std::vector<Anchor>& out,
                                MaxpScratch& scratch) {
  ScanScratch scan_ws;
  selected_anchors_maxp_into(tables, payload, p, out, scratch, scan_ws);
}

std::vector<Anchor> selected_anchors_maxp(const RabinTables& tables,
                                          util::BytesView payload,
                                          std::size_t p) {
  std::vector<Anchor> out;
  MaxpScratch scratch;
  selected_anchors_maxp_into(tables, payload, p, out, scratch);
  return out;
}

namespace {

// SAMPLEBYTE's fixed sample set: byte values whose mixed hash lands in
// 1/period of the space.  Content-independent, so both gateways agree.
// Built as a 256-bit membership bitmap: the scan then tests one bit per
// position instead of paying a 64-bit mix and division per byte.
std::array<std::uint64_t, 4> samplebyte_set(unsigned period) {
  std::array<std::uint64_t, 4> sampled{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint64_t state = b;
    if (util::splitmix64(state) % period == 0) {
      sampled[b >> 6] |= std::uint64_t{1} << (b & 63u);
    }
  }
  return sampled;
}

// Rebuilding the bitmap is 256 hash+divide rounds — measured at roughly
// a third of the whole SAMPLEBYTE cost on an MSS payload — and a codec
// uses one period for its lifetime, so cache the last set per thread.
// (period is validated non-zero by the caller, so 0 is a safe "empty"
// sentinel.)
const std::array<std::uint64_t, 4>& samplebyte_set_cached(unsigned period) {
  thread_local unsigned cached_period = 0;
  thread_local std::array<std::uint64_t, 4> cached{};
  if (cached_period != period) {
    cached = samplebyte_set(period);
    cached_period = period;
  }
  return cached;
}

}  // namespace

void selected_anchors_samplebyte_into(const RabinTables& tables,
                                      util::BytesView payload, unsigned period,
                                      std::size_t skip,
                                      std::vector<Anchor>& out,
                                      ScanScratch& scan_ws) {
  out.clear();
  const std::size_t w = tables.window();
  if (payload.size() < w || period == 0) return;
  out.reserve(payload.size() / (period * (skip > 0 ? skip : 1)) + 8);
  const std::array<std::uint64_t, 4>& sampled = samplebyte_set_cached(period);
  const ScanKernel& kernel = scan_kernel();
  if (kernel.kind == ScanKernelKind::kScalar) {
    for (std::size_t i = 0; i + w <= payload.size();) {
      const std::uint8_t b = payload[i];
      if ((sampled[b >> 6] >> (b & 63u)) & 1u) {
        out.push_back(Anchor{static_cast<std::uint16_t>(i),
                             tables.of(payload.subspan(i, w))});
        i += skip > 0 ? skip : 1;
      } else {
        ++i;
      }
    }
    return;
  }

  // Phase 1: membership bits for every byte, 32 at a time under AVX2.
  const std::size_t n = payload.size();
  const std::uint8_t* p = payload.data();
  scan_ws.masks.resize((n + 63) / 64);
  kernel.member_mask(sampled, p, n, scan_ws.masks.data());

  // Phase 2: the skip walk.  Jumping to the next set bit visits exactly
  // the positions the scalar loop's `++i` path would have tested and
  // rejected, so the anchor sequence is identical.
  const std::size_t limit = n - w;  // last valid anchor position
  const std::size_t last_word = limit >> 6;
  scan_ws.positions.clear();
  std::size_t i = 0;
  while (i <= limit) {
    std::size_t word = i >> 6;
    std::uint64_t m = scan_ws.masks[word] & (~std::uint64_t{0} << (i & 63u));
    while (m == 0 && word < last_word) m = scan_ws.masks[++word];
    if (m == 0) break;
    i = (word << 6) + static_cast<std::size_t>(std::countr_zero(m));
    if (i > limit) break;
    scan_ws.positions.push_back(static_cast<std::uint32_t>(i));
    i += skip > 0 ? skip : 1;
  }

  // Phase 3: from-scratch fingerprints at the anchors, four interleaved
  // lanes.  Each lane runs the exact push sequence of(w) runs, so the
  // per-anchor values are bit-identical; this is where SAMPLEBYTE spends
  // nearly all its time (one of(w) per anchor), and the lanes are fully
  // independent.
  const std::size_t count = scan_ws.positions.size();
  const std::uint32_t* pos = scan_ws.positions.data();
  std::size_t a = 0;
  for (; a + 4 <= count; a += 4) {
    const std::uint8_t* q0 = p + pos[a];
    const std::uint8_t* q1 = p + pos[a + 1];
    const std::uint8_t* q2 = p + pos[a + 2];
    const std::uint8_t* q3 = p + pos[a + 3];
    Fingerprint f0 = kEmptyFingerprint, f1 = kEmptyFingerprint;
    Fingerprint f2 = kEmptyFingerprint, f3 = kEmptyFingerprint;
    for (std::size_t j = 0; j < w; ++j) {
      f0 = tables.push(f0, q0[j]);
      f1 = tables.push(f1, q1[j]);
      f2 = tables.push(f2, q2[j]);
      f3 = tables.push(f3, q3[j]);
    }
    out.push_back(Anchor{static_cast<std::uint16_t>(pos[a]), f0});
    out.push_back(Anchor{static_cast<std::uint16_t>(pos[a + 1]), f1});
    out.push_back(Anchor{static_cast<std::uint16_t>(pos[a + 2]), f2});
    out.push_back(Anchor{static_cast<std::uint16_t>(pos[a + 3]), f3});
  }
  for (; a < count; ++a) {
    out.push_back(Anchor{static_cast<std::uint16_t>(pos[a]),
                         tables.of(payload.subspan(pos[a], w))});
  }
}

void selected_anchors_samplebyte_into(const RabinTables& tables,
                                      util::BytesView payload, unsigned period,
                                      std::size_t skip,
                                      std::vector<Anchor>& out) {
  ScanScratch scan_ws;
  selected_anchors_samplebyte_into(tables, payload, period, skip, out,
                                   scan_ws);
}

std::vector<Anchor> selected_anchors_samplebyte(const RabinTables& tables,
                                                util::BytesView payload,
                                                unsigned period,
                                                std::size_t skip) {
  std::vector<Anchor> out;
  selected_anchors_samplebyte_into(tables, payload, period, skip, out);
  return out;
}

}  // namespace bytecache::rabin
