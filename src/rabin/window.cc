#include "rabin/window.h"

#include <array>
#include <bit>

#include "util/rng.h"

namespace bytecache::rabin {

RollingWindow::RollingWindow(const RabinTables& tables)
    : tables_(&tables),
      ring_(std::bit_ceil(tables.window()), 0),
      mask_(ring_.size() - 1),
      window_(tables.window()) {}

void RollingWindow::reset() {
  fed_ = 0;
  fp_ = kEmptyFingerprint;
  // ring contents are irrelevant until refilled
}

std::size_t scan_erased(const RabinTables& tables, util::BytesView payload,
                        ScanSink sink) {
  return scan(tables, payload, sink);
}

void selected_anchors_into(const RabinTables& tables, util::BytesView payload,
                           unsigned select_bits, std::vector<Anchor>& out) {
  out.clear();
  // Expected yield is one anchor per 2^select_bits positions; the small
  // slack keeps a typical MSS payload from ever reallocating.
  out.reserve((payload.size() >> select_bits) + 8);
  scan(tables, payload, [&](std::size_t off, Fingerprint fp) {
    if (selected(fp, select_bits)) {
      out.push_back(Anchor{static_cast<std::uint16_t>(off), fp});
    }
  });
}

std::vector<Anchor> selected_anchors(const RabinTables& tables,
                                     util::BytesView payload,
                                     unsigned select_bits) {
  std::vector<Anchor> out;
  selected_anchors_into(tables, payload, select_bits, out);
  return out;
}

void selected_anchors_maxp_into(const RabinTables& tables,
                                util::BytesView payload, std::size_t p,
                                std::vector<Anchor>& out,
                                MaxpScratch& scratch) {
  out.clear();
  const std::size_t w = tables.window();
  if (payload.size() < w || p == 0) return;
  const std::size_t positions = payload.size() - w + 1;
  out.reserve(2 * positions / (p + 1) + 8);  // expected density 2/(p+1)

  // Sliding-window maximum via a monotonic queue of candidates (front =
  // current maximum; rightmost wins ties for content-defined stability),
  // fused into the scan sink so selection is a single pass with no
  // per-position fingerprint vector.  The queue lives in a power-of-two
  // ring indexed by monotone head/tail counters — no deque, no modulo.
  // It transiently holds p+1 entries (the new candidate is pushed before
  // the expired front is evicted), so the ring must be sized for p+1 or
  // a power-of-two p would overwrite the live front on push.  Each
  // window [i-p+1, i] emits its argmax; consecutive windows usually
  // share it, so duplicates are skipped.
  std::vector<MaxpScratch::Candidate>& ring = scratch.ring;
  const std::size_t cap = std::bit_ceil(p + 1);
  if (ring.size() < cap) ring.resize(cap);
  const std::size_t mask = cap - 1;
  std::size_t head = 0, tail = 0;  // queue occupies [head, tail)
  constexpr std::uint32_t kNoneEmitted = 0xFFFFFFFFu;
  std::uint32_t last_emitted = kNoneEmitted;
  scan(tables, payload, [&](std::size_t i, Fingerprint fp) {
    while (head != tail && ring[(tail - 1) & mask].fp <= fp) --tail;
    ring[tail & mask] =
        MaxpScratch::Candidate{static_cast<std::uint32_t>(i), fp};
    ++tail;
    if (ring[head & mask].idx + p <= i) ++head;
    if (i + 1 >= p && ring[head & mask].idx != last_emitted) {
      last_emitted = ring[head & mask].idx;
      out.push_back(Anchor{static_cast<std::uint16_t>(last_emitted),
                           ring[head & mask].fp});
    }
  });
}

std::vector<Anchor> selected_anchors_maxp(const RabinTables& tables,
                                          util::BytesView payload,
                                          std::size_t p) {
  std::vector<Anchor> out;
  MaxpScratch scratch;
  selected_anchors_maxp_into(tables, payload, p, out, scratch);
  return out;
}

void selected_anchors_samplebyte_into(const RabinTables& tables,
                                      util::BytesView payload, unsigned period,
                                      std::size_t skip,
                                      std::vector<Anchor>& out) {
  out.clear();
  const std::size_t w = tables.window();
  if (payload.size() < w || period == 0) return;
  out.reserve(payload.size() / (period * (skip > 0 ? skip : 1)) + 8);
  // The sample set: byte values whose mixed hash lands in 1/period of the
  // space.  Fixed (content-independent), so both gateways agree.  Built
  // as a 256-bit membership bitmap up front: the scan then tests one bit
  // per position instead of paying a 64-bit mix and division per byte.
  std::array<std::uint64_t, 4> sampled{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint64_t state = b;
    if (util::splitmix64(state) % period == 0) {
      sampled[b >> 6] |= std::uint64_t{1} << (b & 63u);
    }
  }
  for (std::size_t i = 0; i + w <= payload.size();) {
    const std::uint8_t b = payload[i];
    if ((sampled[b >> 6] >> (b & 63u)) & 1u) {
      out.push_back(Anchor{static_cast<std::uint16_t>(i),
                           tables.of(payload.subspan(i, w))});
      i += skip > 0 ? skip : 1;
    } else {
      ++i;
    }
  }
}

std::vector<Anchor> selected_anchors_samplebyte(const RabinTables& tables,
                                                util::BytesView payload,
                                                unsigned period,
                                                std::size_t skip) {
  std::vector<Anchor> out;
  selected_anchors_samplebyte_into(tables, payload, period, skip, out);
  return out;
}

}  // namespace bytecache::rabin
