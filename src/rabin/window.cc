#include "rabin/window.h"

#include <deque>

#include "util/rng.h"

namespace bytecache::rabin {

RollingWindow::RollingWindow(const RabinTables& tables)
    : tables_(tables), ring_(tables.window(), 0) {}

bool RollingWindow::feed(std::uint8_t b) {
  if (fed_ < ring_.size()) {
    fp_ = tables_.push(fp_, b);
    ring_[fed_ % ring_.size()] = b;
  } else {
    const std::uint8_t out = ring_[head_];
    fp_ = tables_.roll(fp_, out, b);
    ring_[head_] = b;
    head_ = (head_ + 1) % ring_.size();
  }
  ++fed_;
  return full();
}

void RollingWindow::reset() {
  head_ = 0;
  fed_ = 0;
  fp_ = kEmptyFingerprint;
  // ring contents are irrelevant until refilled
}

std::size_t scan(const RabinTables& tables, util::BytesView payload,
                 const std::function<void(std::size_t, Fingerprint)>& sink) {
  const std::size_t w = tables.window();
  if (payload.size() < w) return 0;
  RollingWindow win(tables);
  std::size_t count = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (win.feed(payload[i])) {
      sink(i + 1 - w, win.fingerprint());
      ++count;
    }
  }
  return count;
}

std::vector<Anchor> selected_anchors_maxp(const RabinTables& tables,
                                          util::BytesView payload,
                                          std::size_t p) {
  std::vector<Fingerprint> fps;
  fps.reserve(payload.size());
  scan(tables, payload,
       [&](std::size_t, Fingerprint fp) { fps.push_back(fp); });
  std::vector<Anchor> out;
  if (fps.empty() || p == 0) return out;

  // Sliding-window maximum via a monotonic deque of candidate indices
  // (front = current maximum; rightmost wins ties for content-defined
  // stability).  Each window [i-p+1, i] emits its argmax; consecutive
  // windows usually share it, so duplicates are skipped.
  std::deque<std::size_t> dq;
  std::size_t last_emitted = fps.size();  // sentinel: nothing emitted
  for (std::size_t i = 0; i < fps.size(); ++i) {
    while (!dq.empty() && fps[dq.back()] <= fps[i]) dq.pop_back();
    dq.push_back(i);
    if (dq.front() + p <= i) dq.pop_front();
    if (i + 1 >= p && dq.front() != last_emitted) {
      last_emitted = dq.front();
      out.push_back(
          Anchor{static_cast<std::uint16_t>(last_emitted), fps[last_emitted]});
    }
  }
  return out;
}

std::vector<Anchor> selected_anchors_samplebyte(const RabinTables& tables,
                                                util::BytesView payload,
                                                unsigned period,
                                                std::size_t skip) {
  std::vector<Anchor> out;
  const std::size_t w = tables.window();
  if (payload.size() < w || period == 0) return out;
  // The sample set: byte values whose mixed hash lands in 1/period of the
  // space.  Fixed (content-independent), so both gateways agree.
  for (std::size_t i = 0; i + w <= payload.size();) {
    std::uint64_t state = payload[i];
    const std::uint64_t mixed = util::splitmix64(state);
    if (mixed % period == 0) {
      out.push_back(Anchor{static_cast<std::uint16_t>(i),
                           tables.of(payload.subspan(i, w))});
      i += skip > 0 ? skip : 1;
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<Anchor> selected_anchors(const RabinTables& tables,
                                     util::BytesView payload,
                                     unsigned select_bits) {
  std::vector<Anchor> out;
  scan(tables, payload, [&](std::size_t off, Fingerprint fp) {
    if (selected(fp, select_bits)) {
      out.push_back(Anchor{static_cast<std::uint16_t>(off), fp});
    }
  });
  return out;
}

}  // namespace bytecache::rabin
