#include "rabin/scan_kernel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace bytecache::rabin {

#if defined(__x86_64__) || defined(__i386__)
#define BYTECACHE_X86 1
namespace detail {
// Defined in scan_kernel_avx2.cc, compiled with target("avx2") function
// attributes so the rest of the library stays baseline-ISA.
void mask_avx2(const std::array<std::uint64_t, 4>& set, const std::uint8_t* p,
               std::size_t n, std::uint64_t* masks);
}  // namespace detail
#endif

namespace {

// ---- scalar tier (the oracle) ------------------------------------------
// Identical arithmetic to the fused template scan in window.h: w
// from-scratch pushes, then one roll per position.  Every other tier is
// equivalence-tested against this function.

void fill_scalar(const RabinTables& tables, const std::uint8_t* p,
                 std::size_t n, Fingerprint* out) {
  const std::size_t w = tables.window();
  Fingerprint fp = kEmptyFingerprint;
  for (std::size_t i = 0; i < w; ++i) fp = tables.push(fp, p[i]);
  out[0] = fp;
  for (std::size_t i = w; i < n; ++i) {
    fp = tables.roll(fp, p[i - w], p[i]);
    out[i - w + 1] = fp;
  }
}

void mask_scalar(const std::array<std::uint64_t, 4>& set,
                 const std::uint8_t* p, std::size_t n, std::uint64_t* masks) {
  const std::size_t words = (n + 63) / 64;
  for (std::size_t i = 0; i < words; ++i) masks[i] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = p[i];
    const std::uint64_t bit = (set[b >> 6] >> (b & 63u)) & 1u;
    masks[i >> 6] |= bit << (i & 63u);
  }
}

#ifdef BYTECACHE_X86

// ---- sse2 tier ----------------------------------------------------------
// Four interleaved lanes over a block-split of the position range.  Each
// lane warms up with w from-scratch pushes at its block start, which is
// exactly the from-scratch fingerprint of that window — so every lane
// reproduces the serial scan's values bit-for-bit (no seam correction).
// The lane state lives in general-purpose registers: SSE2 (the x86-64
// baseline this tier targets) has no gather, and moving the two table
// lookups per step through xmm extract/insert costs more than the lookup
// itself.  The tier's win is purely breaking the roll latency chain.

void fill_ilp4(const RabinTables& tables, const std::uint8_t* p, std::size_t n,
               Fingerprint* out) {
  const std::size_t w = tables.window();
  const std::size_t positions = n - w + 1;
  constexpr std::size_t kLanes = 4;
  // Below ~32 positions per lane the warm-up (w extra pushes per lane)
  // eats the ILP win; fall through to the serial reference.
  if (positions < kLanes * 32) {
    fill_scalar(tables, p, n, out);
    return;
  }
  const std::size_t len = positions / kLanes;
  const std::size_t s1 = len, s2 = 2 * len, s3 = 3 * len;
  Fingerprint f0 = kEmptyFingerprint, f1 = kEmptyFingerprint;
  Fingerprint f2 = kEmptyFingerprint, f3 = kEmptyFingerprint;
  for (std::size_t j = 0; j < w; ++j) {
    f0 = tables.push(f0, p[j]);
    f1 = tables.push(f1, p[s1 + j]);
    f2 = tables.push(f2, p[s2 + j]);
    f3 = tables.push(f3, p[s3 + j]);
  }
  out[0] = f0;
  out[s1] = f1;
  out[s2] = f2;
  out[s3] = f3;
  for (std::size_t s = 1; s < len; ++s) {
    f0 = tables.roll(f0, p[s - 1], p[s + w - 1]);
    f1 = tables.roll(f1, p[s1 + s - 1], p[s1 + s + w - 1]);
    f2 = tables.roll(f2, p[s2 + s - 1], p[s2 + s + w - 1]);
    f3 = tables.roll(f3, p[s3 + s - 1], p[s3 + s + w - 1]);
    out[s] = f0;
    out[s1 + s] = f1;
    out[s2 + s] = f2;
    out[s3 + s] = f3;
  }
  // Lane 3 rolls on through the remainder positions.
  for (std::size_t i = kLanes * len; i < positions; ++i) {
    f3 = tables.roll(f3, p[i - 1], p[i + w - 1]);
    out[i] = f3;
  }
}

#endif  // BYTECACHE_X86

// ---- kernel table and dispatch -----------------------------------------

constexpr ScanKernel kScalarKernel{ScanKernelKind::kScalar, "scalar",
                                   &fill_scalar, &mask_scalar};
#ifdef BYTECACHE_X86
constexpr ScanKernel kSse2Kernel{ScanKernelKind::kSse2, "sse2", &fill_ilp4,
                                 &mask_scalar};
// The AVX2 tier shares fill_ilp4: a vpgatherqq vector roll was measured
// ~1.8x slower than the 4-lane GPR fill (gathers lose to scalar L1
// loads for these table sizes), so the tier's delta is the vectorized
// SAMPLEBYTE membership classification.
constexpr ScanKernel kAvx2Kernel{ScanKernelKind::kAvx2, "avx2", &fill_ilp4,
                                 &detail::mask_avx2};
#endif

bool env_flag_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

const ScanKernel* detect() {
  const ScanKernel* best = &kScalarKernel;
#ifdef BYTECACHE_X86
  best = &kSse2Kernel;
  if (__builtin_cpu_supports("avx2")) best = &kAvx2Kernel;
#endif
  // Explicit tier pin (clamped to what the CPU supports) ...
  if (const char* v = std::getenv("BYTECACHE_SCAN_KERNEL")) {
    if (std::strcmp(v, "scalar") == 0) {
      best = &kScalarKernel;
    } else if (std::strcmp(v, "sse2") == 0) {
      best = &scan_kernel(ScanKernelKind::kSse2);
    } else if (std::strcmp(v, "avx2") == 0) {
      best = &scan_kernel(ScanKernelKind::kAvx2);
    }
  }
  // ... but the kill switch always wins.
  if (env_flag_set("BYTECACHE_DISABLE_SIMD")) best = &kScalarKernel;
  return best;
}

std::atomic<const ScanKernel*> g_kernel{nullptr};

}  // namespace

const ScanKernel& scan_kernel() {
  const ScanKernel* k = g_kernel.load(std::memory_order_acquire);
  if (k == nullptr) {
    // Benign race: detect() is idempotent and every thread stores a
    // pointer to the same immutable table entry.
    k = detect();
    g_kernel.store(k, std::memory_order_release);
  }
  return *k;
}

const ScanKernel& scan_kernel(ScanKernelKind kind) {
  switch (kind) {
    case ScanKernelKind::kAvx2:
#ifdef BYTECACHE_X86
      if (__builtin_cpu_supports("avx2")) return kAvx2Kernel;
#endif
      [[fallthrough]];
    case ScanKernelKind::kSse2:
#ifdef BYTECACHE_X86
      return kSse2Kernel;
#endif
      [[fallthrough]];
    case ScanKernelKind::kScalar:
    default:
      return kScalarKernel;
  }
}

bool scan_kernel_available(ScanKernelKind kind) {
  return scan_kernel(kind).kind == kind;
}

void refresh_scan_kernel() {
  g_kernel.store(detect(), std::memory_order_release);
}

ScopedScanKernel::ScopedScanKernel(ScanKernelKind kind)
    : prev_(g_kernel.load(std::memory_order_acquire)) {
  g_kernel.store(&scan_kernel(kind), std::memory_order_release);
}

ScopedScanKernel::~ScopedScanKernel() {
  // prev_ may be nullptr (dispatch never ran): restoring it simply makes
  // the next scan_kernel() call re-detect.
  g_kernel.store(prev_, std::memory_order_release);
}

}  // namespace bytecache::rabin
