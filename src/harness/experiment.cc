#include "harness/experiment.h"

#include <cstdio>

#include "obs/export.h"
#include "resilience/degradation.h"
#include "sim/simulator.h"

namespace bytecache::harness {

TrialResult run_trial(const ExperimentConfig& config, util::BytesView file,
                      std::uint64_t seed) {
  sim::Simulator sim;

  gateway::PipelineConfig pc;
  pc.policy = config.policy;
  pc.dre = config.dre;
  pc.cache = config.cache;
  pc.tcp = config.tcp;
  pc.forward_link = config.forward_link;
  pc.reverse_link = config.reverse_link;
  pc.loss_rate = config.loss_rate;
  pc.bursty_loss = config.bursty_loss;
  pc.reverse_loss_rate = config.reverse_loss_rate;
  pc.seed = seed;
  gateway::Pipeline pipeline(sim, pc);

  app::FileTransfer transfer(sim, pipeline,
                             util::Bytes(file.begin(), file.end()),
                             config.give_up);
  transfer.run_to_completion();

  TrialResult r;
  const app::TransferResult& t = transfer.result();
  r.completed = t.completed;
  r.stalled = t.stalled;
  r.verified = t.verified;
  r.duration_s = t.duration_s;
  r.percent_retrieved = t.percent_retrieved();

  // Every number below comes from the pipeline's registry snapshot: the
  // single stats surface (DESIGN.md §10).  Absent names read as zero, so
  // disabled layers (no encoder, no resilience) need no special-casing
  // beyond a presence check where the *source* of a value changes.
  const obs::Snapshot snap = pipeline.snapshot();
  r.wire_bytes_forward = snap.counter("link.forward.bytes_sent");
  r.packets_forward = snap.counter("link.forward.packets_offered");
  r.link_drops = snap.counter("link.forward.drops_loss") +
                 snap.counter("link.forward.drops_queue");
  r.corrupted = snap.counter("link.forward.corrupted");
  r.decoder_drops = snap.counter("gateway.decoder.dropped");
  r.receiver_checksum_drops = snap.counter("tcp.receiver.checksum_drops");
  if (r.packets_forward > 0) {
    r.actual_loss =
        static_cast<double>(r.link_drops) / r.packets_forward;
    r.perceived_loss = static_cast<double>(r.link_drops + r.decoder_drops +
                                           r.receiver_checksum_drops) /
                       r.packets_forward;
    r.avg_packet_size =
        static_cast<double>(r.wire_bytes_forward) / r.packets_forward;
  }

  if (snap.find("encoder.packets") != nullptr) {
    r.payload_bytes_in = snap.counter("encoder.bytes_in");
    r.payload_bytes_out = snap.counter("encoder.bytes_out");
    r.encoded_packets = snap.counter("encoder.encoded_packets");
    r.references = snap.counter("encoder.references");
    r.flushes = snap.counter("encoder.flushes");
    r.resync_requests = snap.counter("encoder.resync_requests");
    r.resyncs_honored = snap.counter("encoder.resyncs_honored");
    if (r.encoded_packets > 0) {
      r.avg_deps =
          static_cast<double>(snap.counter("encoder.dependency_links")) /
          r.encoded_packets;
    }
  } else {  // DRE off: the TCP payload goes out as-is
    r.payload_bytes_in = snap.counter("tcp.sender.bytes_sent");
    r.payload_bytes_out = r.payload_bytes_in;
  }

  r.epoch_adoptions = snap.counter("decoder.epoch_adoptions");
  r.stale_drops = snap.counter("decoder.drops_stale_epoch") +
                  snap.counter("decoder.drops_stale_ref");
  if (const obs::MetricValue* lvl =
          snap.find("resilience.degradation.worst_level")) {
    r.estimated_loss = snap.gauge("resilience.loss.perceived_max");
    r.degradation_level = resilience::to_string(
        static_cast<resilience::DegradationLevel>(lvl->gauge));
    r.degradation_transitions =
        snap.counter("resilience.degradation.transitions");
  }

  r.repair_packets_sent = snap.counter("gateway.encoder.repair_packets_out");
  r.packets_reconstructed = snap.counter("decoder.fec.reconstructed");
  r.packets_resequenced = snap.counter("decoder.fec.resequenced");
  r.fec_forced_releases = snap.counter("decoder.fec.forced_releases");

  r.tcp_retransmissions = snap.counter("tcp.sender.retransmissions");
  r.tcp_timeouts = snap.counter("tcp.sender.timeouts");
  r.tcp_fast_retransmits = snap.counter("tcp.sender.fast_retransmits");
  r.metrics_json = obs::to_json_object(snap);
  return r;
}

std::string to_json(const TrialResult& r) {
  char buf[1536];
  std::snprintf(
      buf, sizeof buf,
      "{\"completed\":%s,\"stalled\":%s,\"verified\":%s,"
      "\"duration_s\":%.6f,\"percent_retrieved\":%.2f,"
      "\"wire_bytes_forward\":%llu,\"packets_forward\":%llu,"
      "\"link_drops\":%llu,\"decoder_drops\":%llu,"
      "\"actual_loss\":%.6f,\"perceived_loss\":%.6f,"
      "\"payload_bytes_in\":%llu,\"payload_bytes_out\":%llu,"
      "\"encoded_packets\":%llu,\"avg_packet_size\":%.1f,"
      "\"tcp_retransmissions\":%llu,\"tcp_timeouts\":%llu,"
      "\"resync_requests\":%llu,\"resyncs_honored\":%llu,"
      "\"epoch_adoptions\":%llu,\"stale_drops\":%llu,"
      "\"estimated_loss\":%.6f,\"degradation_level\":\"%s\","
      "\"degradation_transitions\":%llu,"
      "\"repair_packets_sent\":%llu,\"packets_reconstructed\":%llu,"
      "\"packets_resequenced\":%llu,\"fec_forced_releases\":%llu,"
      "\"metrics\":",
      r.completed ? "true" : "false", r.stalled ? "true" : "false",
      r.verified ? "true" : "false", r.duration_s, r.percent_retrieved,
      static_cast<unsigned long long>(r.wire_bytes_forward),
      static_cast<unsigned long long>(r.packets_forward),
      static_cast<unsigned long long>(r.link_drops),
      static_cast<unsigned long long>(r.decoder_drops), r.actual_loss,
      r.perceived_loss, static_cast<unsigned long long>(r.payload_bytes_in),
      static_cast<unsigned long long>(r.payload_bytes_out),
      static_cast<unsigned long long>(r.encoded_packets), r.avg_packet_size,
      static_cast<unsigned long long>(r.tcp_retransmissions),
      static_cast<unsigned long long>(r.tcp_timeouts),
      static_cast<unsigned long long>(r.resync_requests),
      static_cast<unsigned long long>(r.resyncs_honored),
      static_cast<unsigned long long>(r.epoch_adoptions),
      static_cast<unsigned long long>(r.stale_drops), r.estimated_loss,
      r.degradation_level,
      static_cast<unsigned long long>(r.degradation_transitions),
      static_cast<unsigned long long>(r.repair_packets_sent),
      static_cast<unsigned long long>(r.packets_reconstructed),
      static_cast<unsigned long long>(r.packets_resequenced),
      static_cast<unsigned long long>(r.fec_forced_releases));
  return std::string(buf) + r.metrics_json + "}";
}

Aggregate run_experiment(const ExperimentConfig& config,
                         util::BytesView file) {
  Aggregate agg;
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < config.trials; ++i) {
    TrialResult r = run_trial(config, file, config.seed + 1 + i);
    if (r.completed) ++completed;
    agg.duration_s.add(r.duration_s);
    agg.wire_bytes.add(static_cast<double>(r.wire_bytes_forward));
    agg.perceived_loss.add(r.perceived_loss);
    agg.actual_loss.add(r.actual_loss);
    agg.percent_retrieved.add(r.percent_retrieved);
    agg.avg_packet_size.add(r.avg_packet_size);
    agg.packets_forward.add(static_cast<double>(r.packets_forward));
    agg.trials.push_back(std::move(r));
  }
  agg.completion_rate = config.trials == 0
                            ? 0.0
                            : static_cast<double>(completed) / config.trials;
  return agg;
}

RatioPoint run_ratio_point(ExperimentConfig config, util::BytesView file) {
  RatioPoint point;
  point.loss_rate = config.loss_rate;
  point.with_dre = run_experiment(config, file);

  ExperimentConfig baseline = config;
  baseline.policy = core::PolicyKind::kNone;
  point.without_dre = run_experiment(baseline, file);

  const double base_bytes = point.without_dre.wire_bytes.mean();
  const double base_delay = point.without_dre.duration_s.mean();
  if (base_bytes > 0) {
    point.bytes_ratio = point.with_dre.wire_bytes.mean() / base_bytes;
  }
  if (base_delay > 0) {
    point.delay_ratio = point.with_dre.duration_s.mean() / base_delay;
  }
  return point;
}

}  // namespace bytecache::harness
