// Experiment harness: runs file transfers over the Fig. 3 topology and
// collects the metrics the paper reports.
//
// A *trial* is one file retrieval with one seed.  An *experiment* is a set
// of trials whose metrics are aggregated.  The ratio helpers implement the
// paper's normalizations:
//   - Figures 10/11: metric with DRE / metric without DRE, both at the
//     same actual loss rate;
//   - Figure 12: bytes normalized by file size, delay normalized by the
//     no-loss download time;
//   - Figure 13: perceived loss rate = (channel drops + undecodable drops
//     + corrupted-in-flight drops) / packets offered to the forward link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/file_transfer.h"
#include "core/factory.h"
#include "core/params.h"
#include "gateway/pipeline.h"
#include "harness/metrics.h"
#include "sim/link.h"
#include "tcp/config.h"
#include "util/bytes.h"

namespace bytecache::harness {

struct ExperimentConfig {
  core::PolicyKind policy = core::PolicyKind::kNone;
  core::DreParams dre;
  cache::CacheConfig cache;
  tcp::TcpConfig tcp;
  sim::LinkConfig forward_link;
  sim::LinkConfig reverse_link{
      .rate_bytes_per_sec = 10'000'000.0,
      .propagation_delay = sim::us(500),
      .queue_packets = 1024,
  };
  double loss_rate = 0.0;
  bool bursty_loss = false;
  double reverse_loss_rate = 0.0;
  std::uint64_t seed = 1;
  std::size_t trials = 10;
  sim::SimTime give_up = sim::sec(600);
};

/// Everything measured in one trial.
struct TrialResult {
  bool completed = false;
  bool stalled = false;
  bool verified = false;
  double duration_s = 0.0;
  double percent_retrieved = 0.0;

  std::uint64_t wire_bytes_forward = 0;  // serialized on the lossy link
  std::uint64_t packets_forward = 0;     // offered to the lossy link
  std::uint64_t link_drops = 0;
  std::uint64_t decoder_drops = 0;       // undecodable packets
  std::uint64_t receiver_checksum_drops = 0;
  std::uint64_t corrupted = 0;

  double actual_loss = 0.0;     // channel only
  double perceived_loss = 0.0;  // channel + undecodable + corrupt-drop

  std::uint64_t payload_bytes_in = 0;   // offered to the encoder
  std::uint64_t payload_bytes_out = 0;  // after encoding
  std::uint64_t encoded_packets = 0;
  std::uint64_t references = 0;
  std::uint64_t flushes = 0;
  double avg_deps = 0.0;
  double avg_packet_size = 0.0;  // forward wire bytes / packets

  std::uint64_t tcp_retransmissions = 0;
  std::uint64_t tcp_timeouts = 0;
  std::uint64_t tcp_fast_retransmits = 0;

  // Resilience layer (zero unless dre.epoch_resync / the resilient
  // policy are enabled).
  std::uint64_t resync_requests = 0;   // received by the encoder
  std::uint64_t resyncs_honored = 0;   // ... that flushed the cache
  std::uint64_t epoch_adoptions = 0;   // decoder epoch changes
  std::uint64_t stale_drops = 0;       // stale-epoch + stale-reference
  double estimated_loss = 0.0;         // encoder-side EWMA (max over pairs)
  const char* degradation_level = "-"; // worst ladder rung reached
  std::uint64_t degradation_transitions = 0;

  // Coded-repair layer (zero unless dre.coded_repair; DESIGN.md §13).
  std::uint64_t repair_packets_sent = 0;    // injected by the encoder gateway
  std::uint64_t packets_reconstructed = 0;  // rebuilt from repair rows
  std::uint64_t packets_resequenced = 0;    // re-ordered via the buffer
  std::uint64_t fec_forced_releases = 0;    // reorder-cache gave up waiting

  /// The full registry snapshot rendered by obs::to_json_object — every
  /// metric the pipeline exposes, embedded verbatim into to_json().
  std::string metrics_json = "{}";
};

/// Runs one transfer of `file` and returns its metrics.
[[nodiscard]] TrialResult run_trial(const ExperimentConfig& config,
                                    util::BytesView file, std::uint64_t seed);

/// Aggregates over config.trials trials (seeds seed+1 .. seed+trials).
struct Aggregate {
  std::vector<TrialResult> trials;
  double completion_rate = 0.0;
  Summary duration_s;
  Summary wire_bytes;
  Summary perceived_loss;
  Summary actual_loss;
  Summary percent_retrieved;
  Summary avg_packet_size;
  Summary packets_forward;
};

[[nodiscard]] Aggregate run_experiment(const ExperimentConfig& config,
                                       util::BytesView file);

/// Machine-readable one-line JSON of a trial (for scripting pipelines).
[[nodiscard]] std::string to_json(const TrialResult& r);

/// The paper's Fig. 10/11 normalization: mean(metric | policy) divided by
/// mean(metric | no DRE) at the same loss rate.
struct RatioPoint {
  double loss_rate = 0.0;
  double bytes_ratio = 0.0;
  double delay_ratio = 0.0;
  Aggregate with_dre;
  Aggregate without_dre;
};

[[nodiscard]] RatioPoint run_ratio_point(ExperimentConfig config,
                                         util::BytesView file);

}  // namespace bytecache::harness
