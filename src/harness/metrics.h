// Small statistics accumulator for multi-trial experiments.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace bytecache::harness {

class Summary {
 public:
  void add(double v) {
    ++n_;
    sum_ += v;
    sum_sq_ += v * v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / n_; }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

  [[nodiscard]] double stddev() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double var = (sum_sq_ - n_ * m * m) / (n_ - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace bytecache::harness
