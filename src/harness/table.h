// Fixed-width ASCII tables and CSV output for the benches.
//
// Every bench prints the same rows/series the paper reports, so results
// can be compared side by side with the published tables and figures.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace bytecache::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);  // "12.3%"

  /// Renders with aligned columns and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated form (same cells, no padding).
  [[nodiscard]] std::string to_csv() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section heading ("== Figure 10: ... ==").
void print_heading(const std::string& title);

}  // namespace bytecache::harness
