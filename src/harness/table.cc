#include "harness/table.h"

#include <cstdio>
#include <numeric>

namespace bytecache::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };
  std::string rule = "+";
  for (std::size_t w : widths) rule += std::string(w + 2, '-') + "+";
  rule += "\n";

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string Table::to_csv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) line += ",";
      line += cells[i];
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

void print_heading(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace bytecache::harness
