// Snapshot exporters: JSON-lines and Prometheus text exposition format.
//
// Both render an obs::Snapshot deterministically (entries are sorted by
// name), so the outputs are golden-testable (tests/data/, regenerate
// with BC_REGEN_GOLDEN=1).
//
// JSON-lines: one self-contained JSON object per metric per line —
// greppable, streamable, and trivially ingested by scripting pipelines:
//
//   {"name":"encoder.packets","type":"counter","value":42}
//   {"name":"gateway.encoder.encode_ns","type":"histogram","count":3,
//    "sum":96,"max":64,"buckets":[[1,1],[32,1],[64,1]]}
//
// Histogram "buckets" pairs are [inclusive_upper_bound, count], sparse
// (zero buckets omitted).
//
// Prometheus: the text exposition format a scrape endpoint serves.
// Dotted names become underscored with a "bc_" namespace prefix
// ("encoder.packets" -> "bc_encoder_packets"); histograms expand into
// cumulative _bucket{le="..."} series plus _sum and _count.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace bytecache::obs {

/// One metric per line; trailing newline.
[[nodiscard]] std::string to_jsonl(const Snapshot& snap);

/// Prometheus text exposition format (version 0.0.4); trailing newline.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// A single JSON object {"name":value,...} with histogram sub-objects —
/// the form embedded into experiment/bench JSON documents.
[[nodiscard]] std::string to_json_object(const Snapshot& snap);

/// "encoder.cache.hits" -> "bc_encoder_cache_hits" (Prometheus naming).
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace bytecache::obs
