#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace bytecache::obs {

namespace {

/// %g-style double rendering that round-trips and never localizes.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still parses identically.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Sparse [upper_bound, count] pairs of the non-empty buckets.
std::string jsonl_buckets(const HistogramValue& h) {
  std::string out = "[";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[" + fmt_u64(Histogram::upper_bound(i)) + "," +
           fmt_u64(h.buckets[i]) + "]";
  }
  out += "]";
  return out;
}

}  // namespace

std::string to_jsonl(const Snapshot& snap) {
  std::string out;
  for (const MetricValue& m : snap.entries()) {
    out += "{\"name\":\"" + m.name + "\",\"type\":\"" +
           kind_name(m.kind) + "\",";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "\"value\":" + fmt_u64(m.counter);
        break;
      case MetricKind::kGauge:
        out += "\"value\":" + fmt_double(m.gauge);
        break;
      case MetricKind::kHistogram:
        out += "\"count\":" + fmt_u64(m.hist.count) +
               ",\"sum\":" + fmt_u64(m.hist.sum) +
               ",\"max\":" + fmt_u64(m.hist.max) +
               ",\"buckets\":" + jsonl_buckets(m.hist);
        break;
    }
    out += "}\n";
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out = "bc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const MetricValue& m : snap.entries()) {
    const std::string name = prometheus_name(m.name);
    out += "# TYPE " + name + " " + kind_name(m.kind) + "\n";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += name + " " + fmt_u64(m.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += name + " " + fmt_double(m.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        // Cumulative buckets over the non-empty prefix of the range,
        // then the mandatory +Inf bucket.
        std::uint64_t cum = 0;
        std::size_t last = 0;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
          if (m.hist.buckets[i] != 0) last = i;
        }
        for (std::size_t i = 0; i <= last; ++i) {
          cum += m.hist.buckets[i];
          out += name + "_bucket{le=\"" +
                 fmt_u64(Histogram::upper_bound(i)) + "\"} " +
                 fmt_u64(cum) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + fmt_u64(m.hist.count) + "\n";
        out += name + "_sum " + fmt_u64(m.hist.sum) + "\n";
        out += name + "_count " + fmt_u64(m.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string to_json_object(const Snapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const MetricValue& m : snap.entries()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + m.name + "\":";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += fmt_u64(m.counter);
        break;
      case MetricKind::kGauge:
        out += fmt_double(m.gauge);
        break;
      case MetricKind::kHistogram:
        out += "{\"count\":" + fmt_u64(m.hist.count) +
               ",\"sum\":" + fmt_u64(m.hist.sum) +
               ",\"max\":" + fmt_u64(m.hist.max) +
               ",\"buckets\":" + jsonl_buckets(m.hist) + "}";
        break;
    }
  }
  out += "}";
  return out;
}

}  // namespace bytecache::obs
