// Lightweight trace spans sampled into histograms.
//
// Wall-clock latency instrumentation for real hot paths (encode/decode
// per-packet cost, ring-pop stall time).  Reading a clock twice per
// packet would be the single most expensive instruction on the DRE fast
// path, so spans *sample*: a power-of-two decimation counter gates the
// clock reads, and only sampled spans touch the histogram.  The
// per-call cost on unsampled packets is one increment and one mask test
// — measured against the <2% telemetry overhead budget by
// bench_throughput's telemetry-on/off pair (tools/bench_json.py gates
// the ratio).
//
//   obs::SpanSampler span(reg.histogram("gateway.encoder.encode_ns"));
//   for (...) {
//     auto t = span.begin();
//     encoder.process(pkt);
//     span.end(t);
//   }
//
// A default-constructed (detached) sampler never samples and never
// reads the clock, so telemetry-off call sites keep the identical code
// shape at the cost of one predictable branch.
#pragma once

#include <bit>
#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace bytecache::obs {

class SpanSampler {
 public:
  /// Detached: begin()/end() are no-ops (one branch each).
  SpanSampler() = default;

  /// Samples one in `every` begin() calls into `hist` (rounded up to a
  /// power of two; 1 records every span — for cold paths and tests).
  explicit SpanSampler(Histogram& hist, std::uint32_t every = 64)
      : hist_(&hist), mask_(round_up_pow2(every) - 1) {}

  struct Token {
    std::chrono::steady_clock::time_point t0{};
    bool sampled = false;
  };

  [[nodiscard]] Token begin() {
    Token t;
    if (hist_ != nullptr && (n_++ & mask_) == 0) {
      t.sampled = true;
      t.t0 = std::chrono::steady_clock::now();
    }
    return t;
  }

  void end(const Token& t) {
    if (!t.sampled) return;
    const auto dt = std::chrono::steady_clock::now() - t.t0;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
    hist_->record(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

  [[nodiscard]] bool attached() const { return hist_ != nullptr; }

 private:
  [[nodiscard]] static constexpr std::uint32_t round_up_pow2(std::uint32_t v) {
    return v <= 1 ? 1 : std::uint32_t{1} << (32 - std::countl_zero(v - 1));
  }

  Histogram* hist_ = nullptr;
  std::uint32_t mask_ = 0;
  std::uint32_t n_ = 0;
};

}  // namespace bytecache::obs
