#include "obs/metrics.h"

#include <algorithm>

namespace bytecache::obs {

// ------------------------------------------------------------ snapshot --

namespace {

/// Sorted-insert position for `name` in `entries`.
template <typename Vec>
auto lower_bound_by_name(Vec& entries, std::string_view name) {
  return std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const MetricValue& m, std::string_view n) { return m.name < n; });
}

void merge_value(MetricValue& into, const MetricValue& from) {
  // Kind mismatches under one name are a wiring bug; last writer wins on
  // kind so the snapshot stays well-formed rather than asserting in a
  // read-only path.
  switch (from.kind) {
    case MetricKind::kCounter:
      into.counter += from.counter;
      break;
    case MetricKind::kGauge:
      switch (from.merge) {
        case MergeOp::kSum: into.gauge += from.gauge; break;
        case MergeOp::kMax: into.gauge = std::max(into.gauge, from.gauge); break;
        case MergeOp::kMin: into.gauge = std::min(into.gauge, from.gauge); break;
        case MergeOp::kLast: into.gauge = from.gauge; break;
      }
      break;
    case MetricKind::kHistogram:
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        into.hist.buckets[i] += from.hist.buckets[i];
      }
      into.hist.count += from.hist.count;
      into.hist.sum += from.hist.sum;
      into.hist.max = std::max(into.hist.max, from.hist.max);
      break;
  }
}

}  // namespace

void Snapshot::add(MetricValue v) {
  auto it = lower_bound_by_name(entries_, v.name);
  if (it != entries_.end() && it->name == v.name) {
    merge_value(*it, v);
    return;
  }
  entries_.insert(it, std::move(v));
}

void Snapshot::merge_from(const Snapshot& other) {
  for (const MetricValue& v : other.entries_) add(v);
}

const MetricValue* Snapshot::find(std::string_view name) const {
  auto it = lower_bound_by_name(entries_, name);
  if (it != entries_.end() && it->name == name) return &*it;
  return nullptr;
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  const MetricValue* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kCounter) ? m->counter : 0;
}

double Snapshot::gauge(std::string_view name) const {
  const MetricValue* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kGauge) ? m->gauge : 0.0;
}

const HistogramValue* Snapshot::histogram(std::string_view name) const {
  const MetricValue* m = find(name);
  return (m != nullptr && m->kind == MetricKind::kHistogram) ? &m->hist
                                                             : nullptr;
}

void Snapshot::add_prefix(std::string_view prefix) {
  if (prefix.empty()) return;
  for (MetricValue& m : entries_) {
    m.name = std::string(prefix) + "." + m.name;
  }
  // Prefixing preserves the relative order of the sorted names.
}

// ------------------------------------------------------------ registry --

MetricsRegistry::Entry* MetricsRegistry::find_entry(std::string_view name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  if (Entry* e = find_entry(name); e != nullptr && e->owned_counter) {
    return *e->owned_counter;
  }
  counters_.push_back(std::make_unique<Counter>());
  Entry e;
  e.name = std::string(name);
  e.kind = MetricKind::kCounter;
  e.owned_counter = counters_.back().get();
  entries_.push_back(std::move(e));
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name, MergeOp merge) {
  if (Entry* e = find_entry(name); e != nullptr && e->owned_gauge) {
    return *e->owned_gauge;
  }
  gauges_.push_back(std::make_unique<Gauge>());
  Entry e;
  e.name = std::string(name);
  e.kind = MetricKind::kGauge;
  e.merge = merge;
  e.owned_gauge = gauges_.back().get();
  entries_.push_back(std::move(e));
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  if (Entry* e = find_entry(name); e != nullptr && e->owned_hist) {
    return *e->owned_hist;
  }
  histograms_.push_back(std::make_unique<Histogram>());
  Entry e;
  e.name = std::string(name);
  e.kind = MetricKind::kHistogram;
  e.owned_hist = histograms_.back().get();
  entries_.push_back(std::move(e));
  return *histograms_.back();
}

void MetricsRegistry::link_counter(std::string_view name,
                                   const std::uint64_t* src) {
  Entry e;
  e.name = std::string(name);
  e.kind = MetricKind::kCounter;
  e.linked_counter = src;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::link_gauge(std::string_view name, const double* src,
                                 MergeOp merge) {
  Entry e;
  e.name = std::string(name);
  e.kind = MetricKind::kGauge;
  e.merge = merge;
  e.linked_gauge = src;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::probe_counter(std::string_view name,
                                    std::function<std::uint64_t()> fn) {
  Entry e;
  e.name = std::string(name);
  e.kind = MetricKind::kCounter;
  e.probe_counter = std::move(fn);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::probe_gauge(std::string_view name,
                                  std::function<double()> fn, MergeOp merge) {
  Entry e;
  e.name = std::string(name);
  e.kind = MetricKind::kGauge;
  e.merge = merge;
  e.probe_gauge = std::move(fn);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::add_provider(Provider fn) {
  providers_.push_back(std::move(fn));
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const Entry& e : entries_) {
    MetricValue v;
    v.name = e.name;
    v.kind = e.kind;
    v.merge = e.merge;
    switch (e.kind) {
      case MetricKind::kCounter:
        if (e.owned_counter != nullptr) {
          v.counter = e.owned_counter->value();
        } else if (e.linked_counter != nullptr) {
          v.counter = *e.linked_counter;
        } else if (e.probe_counter) {
          v.counter = e.probe_counter();
        }
        break;
      case MetricKind::kGauge:
        if (e.owned_gauge != nullptr) {
          v.gauge = e.owned_gauge->value();
        } else if (e.linked_gauge != nullptr) {
          v.gauge = *e.linked_gauge;
        } else if (e.probe_gauge) {
          v.gauge = e.probe_gauge();
        }
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.owned_hist;
        v.hist.buckets = h.buckets();
        v.hist.count = h.count();
        v.hist.sum = h.sum();
        v.hist.max = h.max();
        break;
      }
    }
    snap.add(std::move(v));
  }
  for (const Provider& p : providers_) snap.merge_from(p());
  return snap;
}

void MetricsRegistry::reset() {
  for (auto& c : counters_) c->reset();
  for (auto& g : gauges_) g->reset();
  for (auto& h : histograms_) h->reset();
}

}  // namespace bytecache::obs
