// Generic field descriptors for plain stats structs.
//
// Every per-layer stats struct (EncoderStats, LinkStats, ...) stays a
// plain aggregate of uint64 counters — the cheapest possible hot-path
// representation, and field-compatible with every test that pins exact
// counts.  What used to be eight hand-written merge_into() variants is
// now one declaration per struct: a `stats_fields()` free function
// (found by ADL) returning the name/member-pointer table, from which the
// generic operations below derive
//
//   obs::merge_into(into, from)   field-wise accumulation (the sharded
//                                 gateways' cross-shard aggregation)
//   obs::reset(s)                 zero every field
//   obs::link_stats(reg, p, s)    register every field as a linked
//                                 counter "p.<field>" (snapshot-time
//                                 reads; increment sites untouched)
//   obs::snapshot_of(p, s)        one-shot Snapshot of the struct
//
// Declaring a table is one line per field next to the struct:
//
//   struct LinkStats { std::uint64_t packets_offered = 0; ... };
//   [[nodiscard]] constexpr auto stats_fields(const LinkStats*) {
//     return obs::field_table<LinkStats>(
//         {"packets_offered", &LinkStats::packets_offered}, ...);
//   }
//
// The layer's namespace then re-exports the generic operations with
// `using obs::merge_into;` so existing unqualified call sites keep
// working (ADL finds using-declarations in associated namespaces).
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace bytecache::obs {

/// One described field: its metric name and member pointer.
template <typename S>
struct Field {
  const char* name;
  std::uint64_t S::*member;
};

/// Deduction helper: obs::field_table<S>({"a", &S::a}, {"b", &S::b}).
template <typename S, typename... Fs>
[[nodiscard]] constexpr auto field_table(Fs... fs) {
  return std::array<Field<S>, sizeof...(Fs)>{fs...};
}

/// A stats struct is "described" when an ADL-visible stats_fields()
/// overload returns its field table.
template <typename S>
concept DescribedStats = requires(const S* p) {
  { stats_fields(p) };
};

/// Field-wise accumulation of `from` into `into` — cross-shard and
/// cross-trial aggregation, formerly hand-written per struct.
template <DescribedStats S>
void merge_into(S& into, const S& from) {
  for (const Field<S>& f : stats_fields(static_cast<const S*>(nullptr))) {
    into.*f.member += from.*f.member;
  }
}

/// Zeroes every described field.
template <DescribedStats S>
void reset(S& s) {
  for (const Field<S>& f : stats_fields(static_cast<const S*>(nullptr))) {
    s.*f.member = 0;
  }
}

/// Registers every field of `s` in `reg` as a linked counter named
/// "<prefix>.<field>".  `s` must outlive `reg`.
template <DescribedStats S>
void link_stats(MetricsRegistry& reg, std::string_view prefix, const S& s) {
  for (const Field<S>& f : stats_fields(static_cast<const S*>(nullptr))) {
    reg.link_counter(std::string(prefix) + "." + f.name, &(s.*f.member));
  }
}

/// One-shot Snapshot of a described struct under `prefix`.
template <DescribedStats S>
[[nodiscard]] Snapshot snapshot_of(std::string_view prefix, const S& s) {
  Snapshot snap;
  for (const Field<S>& f : stats_fields(static_cast<const S*>(nullptr))) {
    MetricValue v;
    v.name = std::string(prefix) + "." + f.name;
    v.kind = MetricKind::kCounter;
    v.counter = s.*f.member;
    snap.add(std::move(v));
  }
  return snap;
}

}  // namespace bytecache::obs
