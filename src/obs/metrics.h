// The unified telemetry subsystem: one metrics surface for every layer.
//
// The paper's central result (Section VII, Fig. 13) is an observability
// argument — Cache Flush wins because the *perceived* packet loss rate,
// channel loss plus undecodable packets, is what TCP actually reacts to,
// and only fine-grained per-layer counters reveal it.  Before this
// subsystem every layer hand-rolled its own stats struct with its own
// aggregation idiom; obs replaces that with one shape:
//
//   - Counter / Gauge / Histogram: shard-local metric instances.  They
//     are plain, non-atomic values — the sharded gateways guarantee one
//     thread per shard (DESIGN.md §8, lint bc-nolock), so the hot path
//     stays a single add with no synchronization.
//   - MetricsRegistry: a named collection assembled at construction time
//     (cold path).  Besides owned metrics it can *link* borrowed
//     counters/gauges (pointers into the existing per-layer stats
//     structs, read only at snapshot time — the increment sites are
//     untouched, so instrumentation costs nothing per packet) and attach
//     provider callbacks whose snapshots are merged in on read (how the
//     pipeline aggregates gateways, links, and TCP endpoints, and how a
//     sharded gateway merges its per-shard registries).
//   - Snapshot: the point-in-time value set, mergeable generically —
//     counters and histograms add, gauges combine per their declared
//     MergeOp — exactly the old per-struct merge_into pattern, once.
//
// Exporters (obs/export.h) render a Snapshot as JSON-lines or Prometheus
// text exposition format.  Naming (DESIGN.md §10): dotted lowercase paths,
// layer first — "encoder.packets", "decoder.cache.hits"; histograms carry
// a unit suffix ("gateway.encoder.encode_ns").
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bytecache::obs {

// ------------------------------------------------------------- metrics --

/// Monotonic event count.  Merges by addition.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  void reset() { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// How gauge values combine across shards / layers at snapshot-merge
/// time.  Counters and histograms always add; a gauge must say.
enum class MergeOp : std::uint8_t {
  kSum,  // sizes, byte totals
  kMax,  // worst-case values (perceived loss, degradation rung)
  kMin,
  kLast,  // single-instance values; merging keeps the right-hand one
};

/// Point-in-time level.  Merges per its declared MergeOp.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void reset() { value_ = 0; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket base-2 logarithmic histogram of non-negative integer
/// samples (latencies in ns, run lengths, sizes).  Bucket i holds values
/// whose bit width is i: bucket 0 is exactly {0}, bucket 1 is {1},
/// bucket i>=2 spans [2^(i-1), 2^i - 1].  65 buckets cover the full
/// uint64 range with no configuration and no allocation; recording is a
/// bit_width plus one add.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  void reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// Bucket index of one sample: its bit width (0 for 0).
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive upper bound of bucket i (the Prometheus "le" boundary):
  /// 2^i - 1; ~0 for the last bucket.
  [[nodiscard]] static constexpr std::uint64_t upper_bound(std::size_t i) {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

// ------------------------------------------------------------ snapshot --

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Histogram value as captured into a snapshot.
struct HistogramValue {
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
};

/// One named metric value inside a Snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  MergeOp merge = MergeOp::kSum;  // gauges only; counters/histograms add
  std::uint64_t counter = 0;
  double gauge = 0;
  HistogramValue hist;  // kHistogram only
};

/// A point-in-time, self-describing value set: the single shape every
/// stats consumer (harness tables, experiment JSON, exporters, tests)
/// reads.  Entries are kept sorted by name, which makes merging
/// order-independent and exporter output deterministic.
class Snapshot {
 public:
  /// Merges `other` into this snapshot: counters and histogram buckets
  /// add, gauges combine per their MergeOp.  Associative and (for
  /// non-kLast gauges) commutative, so any merge tree over any shard
  /// order yields the same result — pinned by tests/obs_test.cc.
  void merge_from(const Snapshot& other);

  /// Lookup; nullptr when absent.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;

  /// Convenience readers: the value, or 0 when the name is absent (a
  /// disabled layer simply contributes no entries).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;
  [[nodiscard]] const HistogramValue* histogram(std::string_view name) const;

  /// Inserts or merges one entry (the building block merge_from uses).
  void add(MetricValue v);

  /// Re-namespaces every entry under `prefix` + "." (used by containers
  /// that hold several instances of one component: shards, directions).
  void add_prefix(std::string_view prefix);

  [[nodiscard]] const std::vector<MetricValue>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<MetricValue> entries_;  // sorted by name
};

// ------------------------------------------------------------ registry --

/// A named collection of metrics with one read surface: snapshot().
///
/// Three kinds of membership, all assembled off the hot path:
///   - owned metrics (counter()/gauge()/histogram()): live here, stable
///     addresses, the owner increments through the returned reference;
///   - linked metrics (link_counter()/link_gauge()): borrowed pointers
///     into a component's stats struct, dereferenced only at snapshot
///     time — the component keeps its plain field increments;
///   - providers (add_provider()): callbacks returning whole Snapshots,
///     merged in on read — how composite components (pipelines, sharded
///     gateways) expose their children without copying counters around.
///
/// Not thread-safe by design: a registry is shard-local, like the codec
/// state it describes.  Cross-shard aggregation happens by merging
/// snapshots of quiescent shards (DESIGN.md §8 stats contract).
class MetricsRegistry {
 public:
  using Provider = std::function<Snapshot()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned metrics, created on first use (idempotent per name).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name, MergeOp merge = MergeOp::kLast);
  Histogram& histogram(std::string_view name);

  /// Borrowed values read at snapshot time.  The pointee must outlive
  /// the registry (components link their own member fields).
  void link_counter(std::string_view name, const std::uint64_t* src);
  void link_gauge(std::string_view name, const double* src,
                  MergeOp merge = MergeOp::kLast);

  /// Derived values computed at snapshot time.
  void probe_counter(std::string_view name,
                     std::function<std::uint64_t()> fn);
  void probe_gauge(std::string_view name, std::function<double()> fn,
                   MergeOp merge = MergeOp::kLast);

  /// A child snapshot source, merged into every snapshot() result.
  void add_provider(Provider fn);

  /// Reads everything: owned + linked + probed metrics, then every
  /// provider, merged into one sorted Snapshot.
  [[nodiscard]] Snapshot snapshot() const;

  /// Resets owned metrics (linked/probed values belong to their
  /// components; reset those via the component's reset_stats()).
  void reset();

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    MergeOp merge = MergeOp::kSum;
    // Exactly one of these is active, by (kind, which source).
    Counter* owned_counter = nullptr;
    Gauge* owned_gauge = nullptr;
    Histogram* owned_hist = nullptr;
    const std::uint64_t* linked_counter = nullptr;
    const double* linked_gauge = nullptr;
    std::function<std::uint64_t()> probe_counter;
    std::function<double()> probe_gauge;
  };

  Entry* find_entry(std::string_view name);

  // Owned metric storage: deque-like stable addresses via unique_ptr.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<Entry> entries_;
  std::vector<Provider> providers_;
};

}  // namespace bytecache::obs
