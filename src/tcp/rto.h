// RFC 6298 retransmission-timeout estimation.
//
// SRTT/RTTVAR smoothing with Karn's rule applied by the caller (no samples
// from retransmitted segments).  The RTO doubles on each backoff; the
// paper's stall mechanism is precisely this exponential growth while
// undecodable retransmissions keep failing (Section IV t4/t5).
#pragma once

#include "sim/time.h"

namespace bytecache::tcp {

class RttEstimator {
 public:
  RttEstimator(sim::SimTime initial_rto, sim::SimTime min_rto,
               sim::SimTime max_rto);

  /// Feeds one RTT measurement (from an un-retransmitted segment).
  void sample(sim::SimTime rtt);

  /// Current retransmission timeout including backoff.
  [[nodiscard]] sim::SimTime rto() const;

  /// Doubles the timeout (RFC 6298 5.5).
  void backoff();

  /// Clears the backoff multiplier (after new data is acknowledged).
  void reset_backoff() { backoff_shift_ = 0; }

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] sim::SimTime srtt() const { return srtt_; }
  [[nodiscard]] sim::SimTime rttvar() const { return rttvar_; }
  [[nodiscard]] unsigned backoff_shift() const { return backoff_shift_; }

 private:
  sim::SimTime clamp(sim::SimTime rto) const;

  sim::SimTime initial_rto_;
  sim::SimTime min_rto_;
  sim::SimTime max_rto_;
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  sim::SimTime base_rto_;
  unsigned backoff_shift_ = 0;
  bool has_sample_ = false;
};

}  // namespace bytecache::tcp
