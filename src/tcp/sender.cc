#include "tcp/sender.h"

#include <algorithm>

#include "packet/tcp.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/seqcmp.h"

namespace bytecache::tcp {

TcpSender::TcpSender(sim::Simulator& sim, const TcpConfig& config, SendFn send)
    : sim_(sim),
      config_(config),
      send_(std::move(send)),
      cc_(config.mss, config.initial_cwnd_segments),
      rtt_(config.initial_rto, config.min_rto, config.max_rto) {}

void TcpSender::start(util::Bytes data) {
  data_ = std::move(data);
  started_ = true;
  send_new_data();
}

void TcpSender::send_new_data() {
  if (completed_ || aborted_) return;
  const std::size_t wnd =
      std::min<std::size_t>(cc_.cwnd(), config_.rcv_wnd);
  while (snd_nxt_ < data_.size()) {
    const std::size_t len =
        std::min<std::uint64_t>(config_.mss, data_.size() - snd_nxt_);
    if (flight() + len > wnd) break;
    emit_segment(snd_nxt_, /*retransmission=*/false);
    snd_nxt_ += len;
  }
  if (flight() > 0 && !timer_armed_) arm_timer();
}

void TcpSender::emit_segment(std::uint64_t offset, bool retransmission) {
  const std::size_t len =
      std::min<std::uint64_t>(config_.mss, data_.size() - offset);
  packet::TcpHeader h;
  h.src_port = config_.src_port;
  h.dst_port = config_.dst_port;
  h.seq = config_.isn + static_cast<std::uint32_t>(offset);
  h.ack = 1;  // peer stream carries no data; any value acceptable
  h.flags = packet::TcpHeader::kAck | packet::TcpHeader::kPsh;
  h.window = static_cast<std::uint16_t>(std::min<std::uint32_t>(
      config_.rcv_wnd, 65535));

  util::Bytes segment;
  segment.reserve(packet::TcpHeader::kSize + len);
  const util::BytesView body(data_.data() + offset, len);
  h.serialize(segment, body, config_.src_ip, config_.dst_ip);

  auto pkt = packet::make_packet(config_.src_ip, config_.dst_ip,
                                 packet::IpProto::kTcp, std::move(segment));
  pkt->ip.identification = static_cast<std::uint16_t>(stats_.segments_sent);

  ++stats_.segments_sent;
  stats_.bytes_sent += len;
  if (retransmission) {
    ++stats_.retransmissions;
  } else if (!rtt_active_) {
    rtt_active_ = true;
    rtt_end_offset_ = offset + len;
    rtt_start_ = sim_.now();
  }
  send_(std::move(pkt));
}

void TcpSender::on_packet(const packet::Packet& pkt) {
  if (!started_ || completed_ || aborted_) return;
  auto h = packet::TcpHeader::parse(pkt.payload, pkt.ip.src, pkt.ip.dst);
  if (!h) {
    ++stats_.checksum_drops;
    return;
  }
  if (!h->has_ack()) return;
  ++stats_.acks_received;
  // Map the 32-bit cumulative ACK back to a stream offset near snd_una_.
  const std::uint32_t rel = h->ack - config_.isn;
  const std::uint64_t base = snd_una_ & ~std::uint64_t{0xFFFFFFFF};
  std::uint64_t ackno = base | rel;
  if (ackno + 0x80000000ull < snd_una_) ackno += 0x100000000ull;
  if (ackno > data_.size()) return;  // nonsense ACK
  on_ack(ackno);
}

void TcpSender::on_ack(std::uint64_t ackno) {
  if (ackno > snd_una_) {
    const std::size_t acked = static_cast<std::size_t>(ackno - snd_una_);
    if (rtt_active_ && ackno >= rtt_end_offset_) {
      rtt_.sample(sim_.now() - rtt_start_);
      rtt_active_ = false;
    }
    rtt_.reset_backoff();
    backoffs_ = 0;

    if (cc_.in_fast_recovery()) {
      if (ackno >= recover_) {
        cc_.on_recovery_exit();
        dupacks_ = 0;
        snd_una_ = ackno;
      } else {
        // Partial ACK: the next hole starts at ackno — retransmit it
        // immediately and stay in recovery (RFC 6582).
        cc_.on_partial_ack(acked);
        snd_una_ = ackno;
        emit_segment(snd_una_, /*retransmission=*/true);
        arm_timer();
        send_new_data();
        return;
      }
    } else {
      cc_.on_new_ack(acked);
      dupacks_ = 0;
      snd_una_ = ackno;
    }

    // A late cumulative ACK can cover data the timeout rewind presumed
    // lost, leaving snd_nxt behind snd_una (and flight() underflowed,
    // stalling the window until a spurious RTO).  Pull snd_nxt forward,
    // as BSD does (snd_nxt = max(snd_nxt, snd_una)).
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;

    if (snd_una_ >= data_.size()) {
      finish();
      return;
    }
    arm_timer();
    send_new_data();
    return;
  }

  if (ackno == snd_una_ && flight() > 0) {
    ++stats_.dup_acks;
    if (cc_.in_fast_recovery()) {
      cc_.on_dup_ack_in_recovery();
      send_new_data();
    } else if (++dupacks_ == 3) {
      recover_ = snd_nxt_;
      ++stats_.fast_retransmits;
      if (config_.algo == CongestionAlgo::kTahoe) {
        // Tahoe: retransmit, then slow start from scratch — no recovery
        // phase, everything outstanding is resent via go-back-N.
        cc_.on_timeout(flight());
        dupacks_ = 0;
        rtt_active_ = false;  // Karn: the timed region will be resent
        snd_nxt_ = snd_una_;
        emit_segment(snd_una_, /*retransmission=*/true);
        snd_nxt_ +=
            std::min<std::uint64_t>(config_.mss, data_.size() - snd_una_);
      } else {
        cc_.on_fast_retransmit(flight());
        emit_segment(snd_una_, /*retransmission=*/true);
      }
      arm_timer();
    }
  }
}

void TcpSender::arm_timer() {
  timer_armed_ = true;
  const std::uint64_t gen = ++timer_gen_;
  sim_.after(rtt_.rto(),
             [this, gen, alive = std::weak_ptr<char>(alive_)]() {
               if (alive.expired()) return;  // sender destroyed meanwhile
               on_timer(gen);
             });
}

void TcpSender::cancel_timer() {
  ++timer_gen_;
  timer_armed_ = false;
}

void TcpSender::on_timer(std::uint64_t generation) {
  if (generation != timer_gen_ || completed_ || aborted_) return;
  timer_armed_ = false;
  if (flight() == 0) return;

  ++stats_.timeouts;
  ++backoffs_;
  if (backoffs_ > config_.max_backoffs) {
    aborted_ = true;
    cancel_timer();
    BC_INFO() << "connection stalled after " << backoffs_ - 1
              << " backoffs, delivered " << snd_una_ << "/" << data_.size();
    if (on_abort_) on_abort_(snd_una_);
    return;
  }

  cc_.on_timeout(flight());
  rtt_.backoff();
  rtt_active_ = false;  // Karn: no sample across a retransmission
  dupacks_ = 0;
  recover_ = snd_nxt_;  // avoid spurious fast retransmit after the timeout
  // Go-back-N (classic BSD behaviour, faithful to the paper's era): after
  // an RTO everything in flight is presumed lost and is resent from
  // snd_una in slow start.  Without this, a DRE-induced wipe of a whole
  // window (no dupacks to trigger fast retransmit) would cost one RTO per
  // hole instead of a few slow-start round trips.
  snd_nxt_ = snd_una_;
  emit_segment(snd_una_, /*retransmission=*/true);
  snd_nxt_ += std::min<std::uint64_t>(config_.mss, data_.size() - snd_una_);
  arm_timer();
}

void TcpSender::audit() const {
  if (!util::kAuditEnabled) return;
  BC_AUDIT(snd_una_ <= snd_nxt_)
      << "snd_una " << snd_una_ << " beyond snd_nxt " << snd_nxt_;
  BC_AUDIT(snd_nxt_ <= data_.size())
      << "snd_nxt " << snd_nxt_ << " beyond stream of " << data_.size()
      << " bytes";
  // The same ordering must hold for the 32-bit wire sequence numbers; the
  // flight is far below 2^31 so the signed-distance comparison is valid.
  const std::uint32_t wire_una =
      config_.isn + static_cast<std::uint32_t>(snd_una_);
  const std::uint32_t wire_nxt =
      config_.isn + static_cast<std::uint32_t>(snd_nxt_);
  BC_AUDIT(util::seq_le(wire_una, wire_nxt))
      << "wire seq " << wire_una << " not <= " << wire_nxt;
  BC_AUDIT(util::seq_diff(wire_nxt, wire_una) == snd_nxt_ - snd_una_)
      << "wire-sequence distance " << util::seq_diff(wire_nxt, wire_una)
      << " != stream distance " << snd_nxt_ - snd_una_;
  BC_AUDIT(flight() <= config_.rcv_wnd)
      << flight() << " bytes in flight exceed the receive window "
      << config_.rcv_wnd;
  if (completed_) {
    BC_AUDIT(snd_una_ == data_.size())
        << "completed with only " << snd_una_ << "/" << data_.size()
        << " bytes acknowledged";
  }
  if (rtt_active_) {
    BC_AUDIT(rtt_end_offset_ <= snd_nxt_)
        << "RTT sample waits for offset " << rtt_end_offset_
        << " beyond snd_nxt " << snd_nxt_;
  }
  BC_AUDIT(stats_.retransmissions <= stats_.segments_sent)
      << stats_.retransmissions << " retransmissions out of "
      << stats_.segments_sent << " segments";
  // Each fast retransmit / timeout emits one retransmission, except the
  // final timeout of an aborted connection, which stops short of sending.
  BC_AUDIT(stats_.fast_retransmits + stats_.timeouts <=
           stats_.retransmissions + (aborted_ ? 1 : 0))
      << stats_.fast_retransmits << " fast retransmits + " << stats_.timeouts
      << " timeouts exceed " << stats_.retransmissions << " retransmissions";
  BC_AUDIT(stats_.dup_acks <= stats_.acks_received)
      << stats_.dup_acks << " dup ACKs out of " << stats_.acks_received;
}

void TcpSender::finish() {
  completed_ = true;
  cancel_timer();
  if (on_complete_) on_complete_();
}

}  // namespace bytecache::tcp
