#include "tcp/receiver.h"

#include "packet/tcp.h"
#include "util/check.h"
#include "util/seqcmp.h"

namespace bytecache::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, const TcpConfig& config,
                         SendFn send)
    : sim_(sim), config_(config), send_(std::move(send)) {}

void TcpReceiver::on_packet(const packet::Packet& pkt) {
  auto h = packet::TcpHeader::parse(pkt.payload, pkt.ip.src, pkt.ip.dst);
  if (!h) {
    ++stats_.checksum_drops;
    return;
  }
  const util::BytesView data(pkt.payload.data() + packet::TcpHeader::kSize,
                             pkt.payload.size() - packet::TcpHeader::kSize);
  if (data.empty()) return;
  ++stats_.segments_received;

  // Map the 32-bit sequence number to a stream offset near rcv_nxt_.
  const std::uint32_t rel = h->seq - config_.isn;
  const std::uint64_t base = rcv_nxt_ & ~std::uint64_t{0xFFFFFFFF};
  std::uint64_t off = base | rel;
  if (off + 0x80000000ull < rcv_nxt_) off += 0x100000000ull;
  else if (off > rcv_nxt_ + 0x80000000ull && off >= 0x100000000ull)
    off -= 0x100000000ull;

  bool in_order = false;
  if (off == rcv_nxt_) {
    ++stats_.in_order;
    stream_.insert(stream_.end(), data.begin(), data.end());
    rcv_nxt_ += data.size();
    drain_ooo();
    in_order = true;
    if (on_progress_) on_progress_(rcv_nxt_);
  } else if (off > rcv_nxt_) {
    ++stats_.out_of_order;
    ooo_.emplace(off, util::Bytes(data.begin(), data.end()));
  } else if (off + data.size() > rcv_nxt_) {
    // Partial overlap: deliver the new tail.
    ++stats_.duplicates;
    const std::size_t skip = static_cast<std::size_t>(rcv_nxt_ - off);
    stream_.insert(stream_.end(), data.begin() + skip, data.end());
    rcv_nxt_ = off + data.size();
    drain_ooo();
    in_order = true;
    if (on_progress_) on_progress_(rcv_nxt_);
  } else {
    ++stats_.duplicates;  // fully duplicate segment
  }
  maybe_ack(in_order);
}

void TcpReceiver::maybe_ack(bool in_order) {
  if (!config_.delayed_ack || !in_order) {
    // Immediate mode, or out-of-order/duplicate data (RFC 5681: those
    // must be acknowledged at once so the sender sees duplicate ACKs).
    ack_pending_ = false;
    ++delack_gen_;
    send_ack();
    return;
  }
  if (ack_pending_) {
    // Second in-order segment: acknowledge now.
    ack_pending_ = false;
    ++delack_gen_;
    send_ack();
    return;
  }
  ack_pending_ = true;
  const std::uint64_t gen = ++delack_gen_;
  sim_.after(config_.delack_timeout,
             [this, gen, alive = std::weak_ptr<char>(alive_)]() {
               if (alive.expired()) return;  // receiver destroyed meanwhile
               if (ack_pending_ && gen == delack_gen_) {
                 ack_pending_ = false;
                 send_ack();
               }
             });
}

void TcpReceiver::drain_ooo() {
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->first <= rcv_nxt_) {
    const std::uint64_t off = it->first;
    const util::Bytes& data = it->second;
    if (off + data.size() > rcv_nxt_) {
      const std::size_t skip = static_cast<std::size_t>(rcv_nxt_ - off);
      stream_.insert(stream_.end(), data.begin() + skip, data.end());
      rcv_nxt_ = off + data.size();
    }
    it = ooo_.erase(it);
  }
}

void TcpReceiver::audit() const {
  if (!util::kAuditEnabled) return;
  BC_AUDIT(stream_.size() == rcv_nxt_)
      << "delivered stream has " << stream_.size() << " bytes but rcv_nxt is "
      << rcv_nxt_;
  const std::uint32_t wire_nxt =
      config_.isn + static_cast<std::uint32_t>(rcv_nxt_);
  for (const auto& [off, data] : ooo_) {
    BC_AUDIT(off > rcv_nxt_)
        << "out-of-order segment at " << off
        << " was not drained although rcv_nxt is " << rcv_nxt_;
    BC_AUDIT(!data.empty()) << "empty out-of-order segment buffered at "
                            << off;
    // The buffered range is bounded by the receive window, so the signed
    // 32-bit comparison must agree with the 64-bit one.
    BC_AUDIT(util::seq_gt(config_.isn + static_cast<std::uint32_t>(off),
                          wire_nxt))
        << "wire seq of buffered segment at " << off
        << " not after rcv_nxt " << rcv_nxt_;
  }
  BC_AUDIT(stats_.in_order + stats_.out_of_order + stats_.duplicates ==
           stats_.segments_received)
      << "disposition counters (" << stats_.in_order << " in-order + "
      << stats_.out_of_order << " out-of-order + " << stats_.duplicates
      << " duplicate) do not partition " << stats_.segments_received
      << " segments";
}

void TcpReceiver::send_ack() {
  packet::TcpHeader h;
  h.src_port = config_.dst_port;
  h.dst_port = config_.src_port;
  h.seq = 1;  // the reverse stream carries no data
  h.ack = config_.isn + static_cast<std::uint32_t>(rcv_nxt_);
  h.flags = packet::TcpHeader::kAck;
  h.window = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(config_.rcv_wnd, 65535));

  util::Bytes segment;
  segment.reserve(packet::TcpHeader::kSize);
  h.serialize(segment, {}, config_.dst_ip, config_.src_ip);
  auto pkt = packet::make_packet(config_.dst_ip, config_.src_ip,
                                 packet::IpProto::kTcp, std::move(segment));
  ++stats_.acks_sent;
  send_(std::move(pkt));
}

}  // namespace bytecache::tcp
