#include "tcp/rto.h"

#include <algorithm>
#include <cstdlib>

namespace bytecache::tcp {

RttEstimator::RttEstimator(sim::SimTime initial_rto, sim::SimTime min_rto,
                           sim::SimTime max_rto)
    : initial_rto_(initial_rto),
      min_rto_(min_rto),
      max_rto_(max_rto),
      base_rto_(initial_rto) {}

void RttEstimator::sample(sim::SimTime rtt) {
  if (!has_sample_) {
    // RFC 6298 (2.2): SRTT = R, RTTVAR = R/2.
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298 (2.3): alpha = 1/8, beta = 1/4.
    rttvar_ = (3 * rttvar_ + std::abs(srtt_ - rtt)) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  base_rto_ = clamp(srtt_ + std::max<sim::SimTime>(4 * rttvar_, sim::ms(1)));
}

sim::SimTime RttEstimator::rto() const {
  const sim::SimTime shifted = base_rto_ << backoff_shift_;
  return std::min(shifted, max_rto_);
}

void RttEstimator::backoff() {
  if ((base_rto_ << backoff_shift_) < max_rto_) ++backoff_shift_;
}

sim::SimTime RttEstimator::clamp(sim::SimTime rto) const {
  return std::clamp(rto, min_rto_, max_rto_);
}

}  // namespace bytecache::tcp
