#include "tcp/congestion.h"

#include <algorithm>
#include <limits>

namespace bytecache::tcp {

RenoCongestion::RenoCongestion(std::size_t mss, std::size_t initial_segments)
    : mss_(mss),
      cwnd_(static_cast<double>(mss * initial_segments)),
      ssthresh_(std::numeric_limits<std::size_t>::max() / 2) {}

void RenoCongestion::on_new_ack(std::size_t acked_bytes) {
  if (in_slow_start()) {
    // RFC 5681: increase by min(acked, MSS) per ACK.
    cwnd_ += static_cast<double>(std::min(acked_bytes, mss_));
  } else {
    cwnd_ += static_cast<double>(mss_) * static_cast<double>(mss_) / cwnd_;
  }
}

void RenoCongestion::on_fast_retransmit(std::size_t flight) {
  ssthresh_ = std::max(flight / 2, 2 * mss_);
  cwnd_ = static_cast<double>(ssthresh_ + 3 * mss_);
  in_fast_recovery_ = true;
}

void RenoCongestion::on_dup_ack_in_recovery() {
  cwnd_ += static_cast<double>(mss_);
}

void RenoCongestion::on_partial_ack(std::size_t acked_bytes) {
  cwnd_ -= static_cast<double>(acked_bytes);
  if (cwnd_ < static_cast<double>(mss_)) cwnd_ = static_cast<double>(mss_);
  cwnd_ += static_cast<double>(mss_);
}

void RenoCongestion::on_recovery_exit() {
  cwnd_ = static_cast<double>(ssthresh_);
  in_fast_recovery_ = false;
}

void RenoCongestion::on_timeout(std::size_t flight) {
  ssthresh_ = std::max(flight / 2, 2 * mss_);
  cwnd_ = static_cast<double>(mss_);
  in_fast_recovery_ = false;
}

}  // namespace bytecache::tcp
