// Shared configuration of the simulated TCP endpoints.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace bytecache::tcp {

/// Loss-recovery flavour of the sender.
enum class CongestionAlgo {
  kNewReno,  // fast retransmit + fast recovery (RFC 5681/6582)
  kTahoe,    // fast retransmit, then slow start from one segment
};

struct TcpConfig {
  CongestionAlgo algo = CongestionAlgo::kNewReno;

  std::size_t mss = 1460;  // paper Section IV-C: MSS 1460 on Ethernet

  std::uint32_t isn = 1000;  // sender's initial sequence number

  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 80;
  std::uint16_t dst_port = 40000;

  /// Receive window advertised by the sink.  65535 (no window scaling,
  /// as in the paper's discussion of RFC 1323).
  std::uint32_t rcv_wnd = 23360;  // 16 segments

  /// Initial congestion window, segments (RFC 3390-era value).
  std::size_t initial_cwnd_segments = 4;

  /// RFC 6298 timer bounds.  min_rto matches Linux's 200 ms.
  sim::SimTime initial_rto = sim::ms(1000);
  sim::SimTime min_rto = sim::ms(200);
  sim::SimTime max_rto = sim::sec(60);

  /// Consecutive RTO backoffs on the same data before the connection is
  /// declared stalled and aborted (the paper's "TCP connection stall").
  std::size_t max_backoffs = 8;

  /// RFC 1122 delayed ACKs: acknowledge every second in-order segment or
  /// after `delack_timeout`, but immediately on out-of-order/duplicate
  /// data (those duplicates drive fast retransmit).  Off by default: the
  /// paper-era experiments and the calibration in EXPERIMENTS.md use
  /// immediate ACKs; the ablation bench measures the difference.
  bool delayed_ack = false;
  sim::SimTime delack_timeout = sim::ms(40);
};

}  // namespace bytecache::tcp
