// Reno/NewReno congestion control state machine (RFC 5681 / RFC 6582).
//
// Extracted from the sender so it can be unit-tested in isolation and so
// the benches can report cwnd trajectories.  All quantities are in bytes.
#pragma once

#include <cstdint>

namespace bytecache::tcp {

class RenoCongestion {
 public:
  RenoCongestion(std::size_t mss, std::size_t initial_segments);

  /// Bytes the sender may have in flight.
  [[nodiscard]] std::size_t cwnd() const { return static_cast<std::size_t>(cwnd_); }
  [[nodiscard]] std::size_t ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < static_cast<double>(ssthresh_); }
  [[nodiscard]] bool in_fast_recovery() const { return in_fast_recovery_; }

  /// New data acknowledged outside fast recovery: slow start (cwnd += MSS
  /// per ACK) or congestion avoidance (cwnd += MSS*MSS/cwnd).
  void on_new_ack(std::size_t acked_bytes);

  /// Third duplicate ACK: halve, retransmit is up to the sender.
  /// `flight` is the volume outstanding when loss was detected.
  void on_fast_retransmit(std::size_t flight);

  /// Additional duplicate ACK while in fast recovery (window inflation).
  void on_dup_ack_in_recovery();

  /// Partial ACK during fast recovery (RFC 6582): deflate by the newly
  /// acked amount, then inflate by one MSS.
  void on_partial_ack(std::size_t acked_bytes);

  /// Full ACK ends fast recovery: cwnd = ssthresh.
  void on_recovery_exit();

  /// Retransmission timeout: ssthresh = flight/2, cwnd = 1 MSS.
  void on_timeout(std::size_t flight);

 private:
  std::size_t mss_;
  double cwnd_;  // fractional growth in congestion avoidance
  std::size_t ssthresh_;
  bool in_fast_recovery_ = false;
};

}  // namespace bytecache::tcp
