// Simulated TCP sender (NewReno).
//
// Sends one byte stream (the file) to the peer, implementing the loss
// recovery whose interaction with byte caching the paper studies:
// cumulative ACKs, fast retransmit on three duplicate ACKs with NewReno
// fast recovery (RFC 6582), RFC 6298 retransmission timeouts with
// exponential backoff, and Reno slow start / congestion avoidance.
//
// Internally positions are 64-bit stream offsets; on the wire they become
// 32-bit sequence numbers relative to the ISN.  Transfers are assumed
// < 4 GiB (the paper's objects are 40 KB – 6 MB).
//
// A retransmitted segment is built as a *new* IP packet (fresh uid and IP
// identification) containing the same TCP bytes — exactly the condition
// that makes the naive encoder encode a retransmission against its own
// earlier copy (paper Section IV t4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "obs/fields.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "tcp/congestion.h"
#include "tcp/rto.h"
#include "util/bytes.h"

namespace bytecache::tcp {

struct SenderStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bytes_sent = 0;  // TCP payload bytes, incl. retransmissions
  std::uint64_t acks_received = 0;
  std::uint64_t dup_acks = 0;
  std::uint64_t checksum_drops = 0;
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const SenderStats*) {
  using S = SenderStats;
  return obs::field_table<S>(
      obs::Field<S>{"segments_sent", &S::segments_sent},
      obs::Field<S>{"retransmissions", &S::retransmissions},
      obs::Field<S>{"fast_retransmits", &S::fast_retransmits},
      obs::Field<S>{"timeouts", &S::timeouts},
      obs::Field<S>{"bytes_sent", &S::bytes_sent},
      obs::Field<S>{"acks_received", &S::acks_received},
      obs::Field<S>{"dup_acks", &S::dup_acks},
      obs::Field<S>{"checksum_drops", &S::checksum_drops});
}

using obs::merge_into;
using obs::reset;

class TcpSender {
 public:
  using SendFn = std::function<void(packet::PacketPtr)>;

  TcpSender(sim::Simulator& sim, const TcpConfig& config, SendFn send);

  /// Begins transmitting `data`.  Callbacks fire exactly once.
  void start(util::Bytes data);

  /// Feeds an incoming packet (ACKs from the peer).
  void on_packet(const packet::Packet& pkt);

  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }
  void set_on_abort(std::function<void(std::uint64_t)> fn) {
    on_abort_ = std::move(fn);
  }

  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] std::uint64_t acked_bytes() const { return snd_una_; }
  [[nodiscard]] std::size_t in_flight() const { return flight(); }
  [[nodiscard]] std::uint64_t stream_size() const { return data_.size(); }
  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] const RenoCongestion& congestion() const { return cc_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): send-window ordering (snd_una <= snd_nxt <= stream size,
  /// also checked in 32-bit wire-sequence space via util::seq_*), flight
  /// bounded by the receive window, and counter consistency.
  void audit() const;

 private:
  void send_new_data();
  void emit_segment(std::uint64_t offset, bool retransmission);
  void on_ack(std::uint64_t ackno);
  void arm_timer();
  void cancel_timer();
  void on_timer(std::uint64_t generation);
  [[nodiscard]] std::size_t flight() const {
    return static_cast<std::size_t>(snd_nxt_ - snd_una_);
  }
  void finish();

  sim::Simulator& sim_;
  TcpConfig config_;
  SendFn send_;
  std::function<void()> on_complete_;
  std::function<void(std::uint64_t)> on_abort_;

  util::Bytes data_;
  std::uint64_t snd_una_ = 0;  // lowest unacknowledged offset
  std::uint64_t snd_nxt_ = 0;  // next offset to send
  RenoCongestion cc_;
  RttEstimator rtt_;
  SenderStats stats_;

  unsigned dupacks_ = 0;
  std::uint64_t recover_ = 0;  // NewReno recovery point
  std::size_t backoffs_ = 0;

  // One RTT measurement at a time (Karn's algorithm).
  bool rtt_active_ = false;
  std::uint64_t rtt_end_offset_ = 0;
  sim::SimTime rtt_start_ = 0;

  std::uint64_t timer_gen_ = 0;
  bool timer_armed_ = false;

  // Queued timer events capture `this`; they hold a weak_ptr to this token
  // and become no-ops once the sender is destroyed (the simulator has no
  // event cancellation).
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  bool started_ = false;
  bool completed_ = false;
  bool aborted_ = false;
};

}  // namespace bytecache::tcp
