// Simulated TCP receiver.
//
// Buffers out-of-order segments, delivers the in-order byte stream, and
// acknowledges every arriving data segment immediately (cumulative ACKs;
// a hole produces duplicate ACKs, which drive the sender's fast
// retransmit).  Segments failing the TCP checksum — e.g. corrupted in
// flight — are dropped silently, as a real NIC/stack would.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "obs/fields.h"
#include "packet/packet.h"
#include "sim/simulator.h"
#include "tcp/config.h"
#include "util/bytes.h"

namespace bytecache::tcp {

struct ReceiverStats {
  std::uint64_t segments_received = 0;
  std::uint64_t in_order = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t checksum_drops = 0;
  std::uint64_t acks_sent = 0;
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const ReceiverStats*) {
  using S = ReceiverStats;
  return obs::field_table<S>(
      obs::Field<S>{"segments_received", &S::segments_received},
      obs::Field<S>{"in_order", &S::in_order},
      obs::Field<S>{"out_of_order", &S::out_of_order},
      obs::Field<S>{"duplicates", &S::duplicates},
      obs::Field<S>{"checksum_drops", &S::checksum_drops},
      obs::Field<S>{"acks_sent", &S::acks_sent});
}

using obs::merge_into;
using obs::reset;

class TcpReceiver {
 public:
  using SendFn = std::function<void(packet::PacketPtr)>;

  /// `config` is the *sender's* config (ISN, ports, IPs); ACKs are built
  /// with the directions reversed.
  TcpReceiver(sim::Simulator& sim, const TcpConfig& config, SendFn send);

  /// Feeds a packet that survived the link and the DRE decoder.
  void on_packet(const packet::Packet& pkt);

  /// Invoked whenever new in-order bytes become available.
  void set_on_progress(std::function<void(std::uint64_t total)> fn) {
    on_progress_ = std::move(fn);
  }

  [[nodiscard]] std::uint64_t delivered_bytes() const { return rcv_nxt_; }

  /// The reassembled stream (tests verify bit-exactness end to end).
  [[nodiscard]] const util::Bytes& stream() const { return stream_; }

  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits): the delivered stream matches rcv_nxt, every buffered
  /// out-of-order segment lies strictly beyond rcv_nxt (also checked in
  /// 32-bit wire-sequence space via util::seq_*), and the segment
  /// disposition counters partition the received count.
  void audit() const;

 private:
  /// `in_order`: the arriving segment advanced rcv_nxt (delayed-ACK
  /// candidates); anything else is acknowledged immediately.
  void maybe_ack(bool in_order);
  void send_ack();
  void drain_ooo();

  sim::Simulator& sim_;
  TcpConfig config_;
  SendFn send_;
  std::function<void(std::uint64_t)> on_progress_;

  std::uint64_t rcv_nxt_ = 0;            // next expected stream offset
  std::map<std::uint64_t, util::Bytes> ooo_;  // offset -> bytes
  util::Bytes stream_;
  ReceiverStats stats_;

  // Delayed-ACK state.
  bool ack_pending_ = false;
  std::uint64_t delack_gen_ = 0;

  // Queued delayed-ACK events capture `this`; they hold a weak_ptr to this
  // token and become no-ops once the receiver is destroyed.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace bytecache::tcp
