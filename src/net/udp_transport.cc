#include "net/udp_transport.h"

#include <sys/epoll.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace bytecache::net {

UdpTunnelTransport::UdpTunnelTransport(EventLoop& loop,
                                       const SocketAddr& local,
                                       const SocketAddr& peer)
    : loop_(loop), peer_(peer), learn_peer_(!peer.valid()) {
  BC_CHECK(socket_.bind(local))
      << "tunnel bind " << local.to_string() << ": " << std::strerror(errno);
  loop_.add_fd(socket_.fd(), EPOLLIN, [this](std::uint32_t) { on_readable(); });
}

UdpTunnelTransport::~UdpTunnelTransport() { loop_.remove_fd(socket_.fd()); }

bool UdpTunnelTransport::send(util::BytesView datagram) {
  if (!peer_.valid()) {
    // Feedback generated before the first forward datagram arrived has
    // nowhere to go yet; datagram semantics say drop-and-count.
    ++stats_.send_failures;
    return false;
  }
  if (!socket_.send_to(peer_, datagram)) {
    ++stats_.send_failures;
    return false;
  }
  ++stats_.datagrams_out;
  stats_.bytes_out += datagram.size();
  return true;
}

void UdpTunnelTransport::on_readable() {
  socket_.drain([this](util::BytesView datagram, const SocketAddr& from) {
    if (learn_peer_) {
      peer_ = from;
      learn_peer_ = false;
    }
    deliver(datagram);
  });
}

}  // namespace bytecache::net
