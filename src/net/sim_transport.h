// The simulator backend of the transport seam (DESIGN.md §12).
//
// A SimTransportPair is the two ends of a tunnel whose "wire" is the
// discrete-event simulator's sim::Link — the same rate-limited, lossy,
// reordering link every experiment in this repo runs over.  Datagrams
// sent on one end are parsed back into packets (they are serialized IP
// packets by the transport contract), offered to the link, and
// re-serialized to the other end's handler on delivery.
//
// The pair does not drive the simulator: after feeding input, the owner
// runs `sim.run()` (or run_until) to flush deliveries — exactly how
// every other sim component is driven.  The bytecache_gateway binary's
// `--backend sim` mode interleaves this with its real plain-side
// sockets, which is what makes "the sim is the second backend behind
// the seam" literal: same tunnels, same framing, different wire.
#pragma once

#include <memory>

#include "net/transport.h"
#include "sim/link.h"
#include "sim/simulator.h"

namespace bytecache::net {

struct SimTransportConfig {
  /// Both directions of the tunnel's modeled wire.  Defaults are a fast
  /// clean link so the sim backend measures the codec, not a bottleneck;
  /// experiments dial in rate/loss exactly as PipelineConfig does.
  sim::LinkConfig forward{.rate_bytes_per_sec = 1e9,
                          .propagation_delay = sim::us(50),
                          .queue_packets = 4096};
  sim::LinkConfig reverse{.rate_bytes_per_sec = 1e9,
                          .propagation_delay = sim::us(50),
                          .queue_packets = 4096};
  double forward_loss = 0.0;  // Bernoulli loss per direction
  double reverse_loss = 0.0;
  std::uint64_t seed = 1;
};

class SimTransportPair {
 public:
  SimTransportPair(sim::Simulator& sim, const SimTransportConfig& config);
  ~SimTransportPair();

  /// The encoder-side end (sends over the forward link).
  [[nodiscard]] Transport& end_a();
  /// The decoder-side end (sends over the reverse link).
  [[nodiscard]] Transport& end_b();

  [[nodiscard]] const sim::Link& forward_link() const { return *forward_; }
  [[nodiscard]] const sim::Link& reverse_link() const { return *reverse_; }

  /// Datagrams that failed to parse as IP packets (malformed input is a
  /// send failure on the offering end, mirroring a refused sendto).
  [[nodiscard]] std::uint64_t malformed_sends() const { return malformed_; }

 private:
  class End;

  std::unique_ptr<sim::Link> forward_;
  std::unique_ptr<sim::Link> reverse_;
  std::unique_ptr<End> a_;
  std::unique_ptr<End> b_;
  std::uint64_t malformed_ = 0;
};

}  // namespace bytecache::net
