#include "net/sim_transport.h"

#include "packet/packet.h"
#include "sim/loss_model.h"
#include "util/rng.h"

namespace bytecache::net {

/// One end: send() feeds its direction's link; link delivery on the
/// opposite end re-serializes into deliver().
class SimTransportPair::End final : public Transport {
 public:
  End(SimTransportPair& pair, sim::Link& out) : pair_(pair), out_(out) {}

  bool send(util::BytesView datagram) override {
    packet::PacketPtr pkt = packet::from_wire(datagram);
    if (pkt == nullptr) {
      ++pair_.malformed_;
      ++stats_.send_failures;
      return false;
    }
    ++stats_.datagrams_out;
    stats_.bytes_out += datagram.size();
    out_.send(std::move(pkt));
    return true;
  }

  void on_link_delivery(const packet::Packet& pkt) {
    const util::Bytes wire = packet::to_wire(pkt);
    deliver(wire);
  }

 private:
  SimTransportPair& pair_;
  sim::Link& out_;
};

SimTransportPair::SimTransportPair(sim::Simulator& sim,
                                   const SimTransportConfig& config) {
  forward_ = std::make_unique<sim::Link>(
      sim, config.forward,
      std::make_unique<sim::BernoulliLoss>(config.forward_loss),
      util::Rng(config.seed));
  reverse_ = std::make_unique<sim::Link>(
      sim, config.reverse,
      std::make_unique<sim::BernoulliLoss>(config.reverse_loss),
      util::Rng(config.seed + 1));
  a_ = std::make_unique<End>(*this, *forward_);
  b_ = std::make_unique<End>(*this, *reverse_);
  forward_->set_sink(
      [this](packet::PacketPtr pkt) { b_->on_link_delivery(*pkt); });
  reverse_->set_sink(
      [this](packet::PacketPtr pkt) { a_->on_link_delivery(*pkt); });
}

// Out of line for the incomplete End in the header.
SimTransportPair::~SimTransportPair() = default;

Transport& SimTransportPair::end_a() { return *a_; }
Transport& SimTransportPair::end_b() { return *b_; }

}  // namespace bytecache::net
