#include "net/gateway_tunnel.h"

#include "core/control.h"
#include "packet/packet.h"
#include "packet/udp.h"

namespace bytecache::net {

namespace {

/// The gateway-construction view of a tunnel config: the tunnel's own
/// registry is the parent, so gateway + codec + cache metrics surface
/// through the tunnel's snapshot().
core::GatewayConfig gw_config(const TunnelConfig& config,
                              obs::MetricsRegistry& parent) {
  core::GatewayConfig cfg = config.gateway;
  cfg.metrics = &parent;
  return cfg;
}

}  // namespace

EncoderTunnel::EncoderTunnel(const TunnelConfig& config, Transport& tunnel)
    : config_(config), tunnel_(tunnel), gw_(gw_config(config, metrics_)) {
  obs::link_stats(metrics_, "net.plain", stats_);
  obs::link_stats(metrics_, "net.tunnel", tunnel_.stats());
  gw_.set_sink([this](packet::PacketPtr pkt) {
    packet::to_wire_into(*pkt, wire_scratch_);
    (void)tunnel_.send(wire_scratch_);
  });
  tunnel_.set_handler(
      [this](util::BytesView wire) { on_tunnel_datagram(wire); });
}

void EncoderTunnel::on_plain_datagram(util::BytesView data,
                                      std::uint64_t source_key) {
  // One plain datagram -> one tunnel datagram; both the synthesized
  // UDP header and the IP header must fit the 16-bit IP total length.
  if (data.size() + packet::UdpHeader::kSize + packet::Ipv4Header::kSize >
      0xFFFF) {
    ++stats_.oversize_dropped;
    return;
  }
  auto [it, inserted] = flow_ips_.try_emplace(
      source_key,
      config_.virt_client_ip + static_cast<std::uint32_t>(flow_ips_.size()));
  if (inserted) ++stats_.flows;
  const std::uint32_t src_ip = it->second;
  ++stats_.plain_in;
  stats_.plain_bytes_in += data.size();

  packet::UdpHeader udp;
  udp.src_port = config_.virt_src_port;
  udp.dst_port = config_.virt_dst_port;
  payload_scratch_.clear();
  udp.serialize(payload_scratch_, data, src_ip, config_.virt_server_ip);
  auto pkt = packet::make_packet(src_ip, config_.virt_server_ip,
                                 packet::IpProto::kUdp, payload_scratch_);
  gw_.receive(std::move(pkt));
}

void EncoderTunnel::on_tunnel_datagram(util::BytesView wire) {
  packet::PacketPtr pkt = packet::from_wire(wire);
  if (pkt == nullptr) {
    ++stats_.tunnel_malformed;
    return;
  }
  if (pkt->ip.protocol == core::kControlProto) {
    gw_.receive_control(*pkt);
    return;
  }
  // Reverse-path data (e.g. TCP ACKs once a TCP front end exists) feeds
  // the ACK-gated observer; today's UDP front end never produces it.
  gw_.observe_reverse(*pkt);
}

bool EncoderTunnel::flush_cache() {
  if (!gw_.enabled()) return false;
  gw_.encoder()->flush_counted();
  return true;
}

bool EncoderTunnel::switch_policy(std::string_view name) {
  const auto kind = core::policy_from_string(name);
  if (!kind) return false;
  return gw_.switch_policy(*kind);
}

DecoderTunnel::DecoderTunnel(const TunnelConfig& config, Transport& tunnel,
                             PlainSink plain_sink)
    : tunnel_(tunnel),
      plain_sink_(std::move(plain_sink)),
      gw_(gw_config(config, metrics_)) {
  obs::link_stats(metrics_, "net.plain", stats_);
  obs::link_stats(metrics_, "net.tunnel", tunnel_.stats());
  gw_.set_sink([this](packet::PacketPtr pkt) {
    const auto udp =
        packet::UdpHeader::parse(pkt->payload, pkt->ip.src, pkt->ip.dst);
    if (!udp) {
      // Decoded to something that is not the tunnel's synthesized UDP
      // framing (or failed its checksum): nothing to deliver plain-side.
      ++stats_.tunnel_malformed;
      return;
    }
    const util::BytesView data(pkt->payload.data() + packet::UdpHeader::kSize,
                               pkt->payload.size() - packet::UdpHeader::kSize);
    ++stats_.plain_out;
    stats_.plain_bytes_out += data.size();
    if (plain_sink_) plain_sink_(data);
  });
  gw_.set_feedback([this](packet::PacketPtr pkt) {
    packet::to_wire_into(*pkt, wire_scratch_);
    (void)tunnel_.send(wire_scratch_);
  });
  tunnel_.set_handler(
      [this](util::BytesView wire) { on_tunnel_datagram(wire); });
}

void DecoderTunnel::on_tunnel_datagram(util::BytesView wire) {
  packet::PacketPtr pkt = packet::from_wire(wire);
  if (pkt == nullptr) {
    ++stats_.tunnel_malformed;
    return;
  }
  gw_.receive(std::move(pkt));
}

bool DecoderTunnel::flush_cache() {
  if (!gw_.enabled()) return false;
  gw_.decoder()->flush();
  return true;
}

}  // namespace bytecache::net
