// A small epoll event loop — the real-I/O counterpart of sim::Simulator
// (DESIGN.md §12).
//
// One loop drives one gateway process: level-triggered fd readiness
// callbacks (UDP sockets, the control channel) plus timerfd-backed
// timers.  Everything runs on the thread that calls run(); the loop is
// deliberately single-threaded — the same shared-nothing contract as a
// sharded-gateway worker (§8) — so handlers need no locks.  stop() is
// the one cross-thread (and async-signal-safe) entry point: it writes an
// eventfd the loop waits on, which is how SIGTERM reaches a clean
// teardown.
//
// Lifetime rules (the PR 1 use-after-free timers are the cautionary
// tale, DESIGN.md §6):
//
//   - remove_fd() marks the registration dead before dropping it, and
//     dispatch re-checks liveness per event: a handler removed by an
//     earlier callback of the same epoll_wait batch is never invoked.
//   - The dispatched entry is kept alive (shared_ptr) across the call,
//     so a callback may remove *itself* — even destroy the object that
//     owns it — without yanking the std::function out from under its own
//     execution.
//   - Timer is RAII: its destructor deregisters and closes the timerfd,
//     so a destroyed timer can never fire.  There is no raw "schedule a
//     callback in N ms" surface to leak.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace bytecache::net {

class EventLoop {
 public:
  /// Readiness callback; `events` is the epoll event mask (EPOLLIN...).
  using FdHandler = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (level-triggered) for `events`; the handler runs on
  /// the loop thread.  The fd is not owned: callers close it after
  /// remove_fd().  Registering an already-registered fd replaces its
  /// handler.
  void add_fd(int fd, std::uint32_t events, FdHandler handler);

  /// Deregisters `fd`.  Safe from inside any handler (including the
  /// fd's own): pending dispatches of this registration are dropped.
  void remove_fd(int fd);

  /// Runs until stop().  Not reentrant.
  void run();

  /// One epoll_wait (bounded by `timeout_ms`; -1 = block) plus dispatch.
  /// Returns the number of events handled — the building block for
  /// tests and for callers interleaving the loop with other work.
  int run_once(int timeout_ms);

  /// Requests run() to return after the current dispatch batch.  Safe
  /// from other threads and from signal handlers (one eventfd write).
  void stop();

  /// Registered fd count (excludes the internal wake eventfd).
  [[nodiscard]] std::size_t watched_fds() const { return entries_.size(); }

 private:
  struct Entry {
    FdHandler handler;
    bool alive = true;
  };

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() wake-up
  std::unordered_map<int, std::shared_ptr<Entry>> entries_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

/// A timerfd-backed timer owned by its user, registered on an EventLoop.
/// The callback runs on the loop thread.  Destruction deregisters, so
/// the callback can never fire after the Timer dies — and the callback
/// itself may cancel(), restart, or destroy the Timer it belongs to.
class Timer {
 public:
  Timer(EventLoop& loop, std::function<void()> on_fire);
  ~Timer();

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Fires once after `delay` (replacing any pending arming).
  void start_oneshot(std::chrono::nanoseconds delay);

  /// Fires every `period` (first fire one period from now).
  void start_periodic(std::chrono::nanoseconds period);

  /// Disarms; a cancelled timer does not fire until restarted.
  void cancel();

  [[nodiscard]] bool armed() const { return armed_; }

  /// Fires this timer has delivered (for tests and stats).
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

 private:
  void arm(std::chrono::nanoseconds value, std::chrono::nanoseconds interval);
  void on_readable();

  EventLoop& loop_;
  std::function<void()> on_fire_;
  int fd_ = -1;
  bool armed_ = false;
  bool periodic_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace bytecache::net
