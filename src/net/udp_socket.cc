#include "net/udp_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "packet/ipv4.h"
#include "util/check.h"

namespace bytecache::net {

namespace {

sockaddr_in to_sockaddr(const SocketAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.ip);
  sa.sin_port = htons(a.port);
  return sa;
}

SocketAddr from_sockaddr(const sockaddr_in& sa) {
  return SocketAddr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

std::string SocketAddr::to_string() const {
  return packet::ip_to_string(ip) + ":" + std::to_string(port);
}

std::optional<SocketAddr> SocketAddr::parse(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon + 1 >= text.size()) {
    return std::nullopt;
  }
  const std::string host(text.substr(0, colon));
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) != 1) return std::nullopt;
  const std::string_view port_text = text.substr(colon + 1);
  std::uint32_t port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
      port == 0 || port > 0xFFFF) {
    return std::nullopt;
  }
  return SocketAddr{ntohl(addr.s_addr), static_cast<std::uint16_t>(port)};
}

UdpSocket::UdpSocket() {
  fd_ = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  BC_CHECK(fd_ >= 0) << "socket: " << std::strerror(errno);
  // Loopback smoke moves whole files through one socket pair; a roomy
  // receive buffer keeps a bursty sender from cooking up artificial
  // loss.  Best effort — the kernel clamps to its rmem_max.
  const int bytes = 4 * 1024 * 1024;
  (void)setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes);
}

UdpSocket::~UdpSocket() { ::close(fd_); }

bool UdpSocket::bind(const SocketAddr& addr) {
  sockaddr_in sa = to_sockaddr(addr);
  return ::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0;
}

SocketAddr UdpSocket::local_addr() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return SocketAddr{};
  }
  return from_sockaddr(sa);
}

bool UdpSocket::send_to(const SocketAddr& to, util::BytesView datagram) {
  const sockaddr_in sa = to_sockaddr(to);
  const ssize_t n =
      sendto(fd_, datagram.data(), datagram.size(), 0,
             reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  return n == static_cast<ssize_t>(datagram.size());
}

int UdpSocket::drain(const RecvHandler& handler) {
  // 64 KiB covers the maximum UDP payload; the buffer lives on the
  // stack of the (cold relative to the codec) socket path.
  std::uint8_t buf[65536];
  int received = 0;
  while (received < kMaxRecvBatch) {
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    const ssize_t n = recvfrom(fd_, buf, sizeof buf, 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN ends the drain; ECONNREFUSED (a previous send hit a
      // closed port) and any harder error also just end it — the next
      // EPOLLIN resumes, and an unreadable socket must not spin here.
      break;
    }
    ++received;
    handler(util::BytesView(buf, static_cast<std::size_t>(n)),
            from_sockaddr(sa));
  }
  return received;
}

}  // namespace bytecache::net
