// The gateway's runtime control channel (DESIGN.md §12.3).
//
// A datagram admin protocol in the idiom of beng-proxy's control/
// socket: a magic-framed request datagram carrying one command, one
// response datagram per request, strict parsing (bad magic, short
// header, or a length that disagrees with the datagram size are all
// silently dropped — an admin protocol never answers garbage).
//
// This is the *operator* channel (stats snapshot, cache flush, policy
// switch, shutdown) and is deliberately separate from core/control.h,
// which is the decoder->encoder data-plane feedback that travels inside
// the tunnel.
//
// Frames (all integers big-endian, matching the project wire idiom):
//
//   request:   magic(4)=0xBCC7 7C01  command(2)  length(2)  payload
//   response:  magic(4)=0xBCC7 7C02  command(2)  status(1)  length(2)  payload
//
// Commands:
//   kPing          payload: none        -> ok, payload "pong"
//   kStats         payload: none        -> ok, payload = obs JSONL snapshot
//   kFlushCache    payload: none        -> ok after Encoder/Decoder::flush()
//   kSwitchPolicy  payload: policy name -> ok after the encoder swaps its
//                  EncodingPolicy (core::policy_from_string names)
//   kShutdown      payload: none        -> ok, then the gateway begins a
//                  clean teardown (response is sent first)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/event_loop.h"
#include "net/udp_socket.h"
#include "obs/fields.h"
#include "util/bytes.h"

namespace bytecache::net {

inline constexpr std::uint32_t kControlRequestMagic = 0xBCC77C01;
inline constexpr std::uint32_t kControlResponseMagic = 0xBCC77C02;

/// Stats responses are clipped here so the frame always fits one UDP
/// datagram (65507 payload max, minus header slack).
inline constexpr std::size_t kMaxControlPayload = 60000;

enum class ControlCommand : std::uint16_t {
  kPing = 1,
  kStats = 2,
  kFlushCache = 3,
  kSwitchPolicy = 4,
  kShutdown = 5,
};

struct ControlRequest {
  ControlCommand command = ControlCommand::kPing;
  util::Bytes payload;

  [[nodiscard]] util::Bytes serialize() const;
  /// Strict: exact header, known command, length == remaining bytes.
  static std::optional<ControlRequest> parse(util::BytesView wire);
};

struct ControlResponse {
  ControlCommand command = ControlCommand::kPing;
  bool ok = false;
  util::Bytes payload;

  [[nodiscard]] util::Bytes serialize() const;
  static std::optional<ControlResponse> parse(util::BytesView wire);
};

/// What the gateway plugs into the server.  Unset handlers answer their
/// command with an error response (the decoder side has no policy to
/// switch, for example).
struct ControlHandlers {
  std::function<std::string()> stats_jsonl;
  std::function<bool()> flush_cache;
  std::function<bool(std::string_view)> switch_policy;
  std::function<void()> shutdown;
};

struct ControlServerStats {
  std::uint64_t requests = 0;
  std::uint64_t malformed = 0;
  std::uint64_t errors = 0;  // requests answered with status != ok
};

[[nodiscard]] constexpr auto stats_fields(const ControlServerStats*) {
  using S = ControlServerStats;
  return obs::field_table<S>(
      obs::Field<S>{"requests", &S::requests},
      obs::Field<S>{"malformed", &S::malformed},
      obs::Field<S>{"errors", &S::errors});
}

using obs::merge_into;
using obs::reset;

class ControlServer {
 public:
  /// Binds `addr` on `loop`.  Aborts (BC_CHECK) if the bind fails: an
  /// explicitly requested control channel that cannot listen is a
  /// configuration error, not a condition to limp through.
  ControlServer(EventLoop& loop, const SocketAddr& addr,
                ControlHandlers handlers);
  ~ControlServer();

  [[nodiscard]] SocketAddr local_addr() const { return socket_.local_addr(); }
  [[nodiscard]] const ControlServerStats& stats() const { return stats_; }

 private:
  void on_request(util::BytesView wire, const SocketAddr& from);
  [[nodiscard]] ControlResponse handle(const ControlRequest& req,
                                       bool& shutdown_after);

  EventLoop& loop_;
  UdpSocket socket_;
  ControlHandlers handlers_;
  ControlServerStats stats_;
};

}  // namespace bytecache::net
