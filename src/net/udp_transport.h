// The real-I/O backend of the transport seam: one UDP socket on an
// epoll EventLoop (DESIGN.md §12).
//
// The encoder side is constructed knowing its peer (the decoder's
// tunnel address); the decoder side may start peerless and lock onto
// the source of the first datagram it receives — the same
// learn-the-peer handshake beng-proxy's control sockets use, which
// keeps the two-process launch order-independent.
#pragma once

#include "net/event_loop.h"
#include "net/transport.h"
#include "net/udp_socket.h"

namespace bytecache::net {

class UdpTunnelTransport final : public Transport {
 public:
  /// Binds `local` (port 0 = ephemeral; see local_addr()) and registers
  /// on `loop`.  `peer` may be invalid — then the peer is learned from
  /// the first arriving datagram.  Aborts (BC_CHECK) if the bind fails:
  /// a tunnel without its socket cannot exist.
  UdpTunnelTransport(EventLoop& loop, const SocketAddr& local,
                     const SocketAddr& peer);
  ~UdpTunnelTransport() override;

  bool send(util::BytesView datagram) override;

  [[nodiscard]] SocketAddr local_addr() const { return socket_.local_addr(); }
  [[nodiscard]] const SocketAddr& peer() const { return peer_; }

 private:
  void on_readable();

  EventLoop& loop_;
  UdpSocket socket_;
  SocketAddr peer_;
  bool learn_peer_ = false;
};

}  // namespace bytecache::net
