// The transport seam between a gateway pair (DESIGN.md §12).
//
// A Transport is one end of the bidirectional datagram channel that
// carries the tunnel's framed traffic: every datagram is exactly one
// serialized IP packet (packet::to_wire) — a passthrough packet, a
// DRE-encoded packet (IpProto::kDre, the v1/v2 wire format of
// core/wire.h), or a reverse-path control packet (core::kControlProto).
// The framing is therefore the codec's own wire format; the transport
// adds nothing, so the bytes the sim backend charges and the bytes the
// UDP backend puts on a real wire are the same bytes.
//
// Two backends implement the seam:
//   - UdpTunnelTransport (udp_transport.h): a real UDP socket on an
//     epoll EventLoop — genuine loss, reordering, and NIC-shaped
//     arrival.
//   - SimTransportPair (sim_transport.h): the discrete-event simulator's
//     sim::Link behind the same interface, so the pair of tunnels runs
//     unchanged against modeled loss — the proof that the sim is "the
//     second backend", not a separate code path.
//
// Delivery is push: the backend invokes the handler from its own
// drive (the event loop thread or the simulator run).  Transports are
// single-threaded like everything around them.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "obs/fields.h"
#include "util/bytes.h"

namespace bytecache::net {

struct TransportStats {
  std::uint64_t datagrams_out = 0;
  std::uint64_t datagrams_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t send_failures = 0;  // kernel refusals (full buffers)
};

/// Telemetry field table (obs/fields.h): merge_into / reset / registry
/// names, same idiom as every other stats struct.
[[nodiscard]] constexpr auto stats_fields(const TransportStats*) {
  using S = TransportStats;
  return obs::field_table<S>(
      obs::Field<S>{"datagrams_out", &S::datagrams_out},
      obs::Field<S>{"datagrams_in", &S::datagrams_in},
      obs::Field<S>{"bytes_out", &S::bytes_out},
      obs::Field<S>{"bytes_in", &S::bytes_in},
      obs::Field<S>{"send_failures", &S::send_failures});
}

using obs::merge_into;
using obs::reset;

class Transport {
 public:
  using Handler = std::function<void(util::BytesView datagram)>;

  virtual ~Transport() = default;

  /// Queues one datagram towards the peer.  False means the datagram
  /// was dropped at the sender (e.g. a full socket buffer) — datagram
  /// semantics, so callers count it, never retry it.
  virtual bool send(util::BytesView datagram) = 0;

  /// Sets the receiver for datagrams arriving from the peer.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  [[nodiscard]] const TransportStats& stats() const { return stats_; }

 protected:
  /// Backends call this for every arriving datagram.
  void deliver(util::BytesView datagram) {
    ++stats_.datagrams_in;
    stats_.bytes_in += datagram.size();
    if (handler_) handler_(datagram);
  }

  TransportStats stats_;

 private:
  Handler handler_;
};

}  // namespace bytecache::net
