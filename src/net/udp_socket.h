// Non-blocking UDP sockets and socket addresses for the real-I/O
// gateway (DESIGN.md §12).
//
// Deliberately thin: an fd plus the handful of operations the tunnel
// needs (bind, sendto, a drain-until-EAGAIN receive loop).  Sockets are
// level-triggered on the EventLoop, and recv() is always called in a
// drain loop anyway, so no readiness state is cached here.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace bytecache::net {

/// An IPv4 endpoint ("127.0.0.1:9000").  Stored in host byte order;
/// conversion to sockaddr_in happens at the syscall boundary.
struct SocketAddr {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  [[nodiscard]] bool operator==(const SocketAddr&) const = default;

  /// A zero address is "unset" (the decoder before it learns its peer).
  [[nodiscard]] bool valid() const { return port != 0; }

  /// Packs into one u64 — the tunnel's flow-map key.
  [[nodiscard]] std::uint64_t key() const {
    return (std::uint64_t{ip} << 16) | port;
  }

  [[nodiscard]] std::string to_string() const;

  /// Parses "a.b.c.d:port"; nullopt on malformed input.
  static std::optional<SocketAddr> parse(std::string_view text);
};

/// Cap on datagrams drained per readable event before yielding back to
/// the loop, so one busy socket cannot starve the control channel.
inline constexpr int kMaxRecvBatch = 64;

class UdpSocket {
 public:
  /// Called per received datagram with the payload and its source.
  using RecvHandler =
      std::function<void(util::BytesView datagram, const SocketAddr& from)>;

  UdpSocket();
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Binds to `addr` (port 0 picks an ephemeral port).  Returns false on
  /// failure (errno preserved for the caller's error message).
  [[nodiscard]] bool bind(const SocketAddr& addr);

  /// The bound local address (valid after a successful bind()).
  [[nodiscard]] SocketAddr local_addr() const;

  /// Sends one datagram to `to`.  Returns false if the kernel refused
  /// (full socket buffer = the datagram is dropped, exactly the loss
  /// semantics a real tunnel has; callers count, not retry).
  [[nodiscard]] bool send_to(const SocketAddr& to, util::BytesView datagram);

  /// Drains pending datagrams (up to kMaxRecvBatch) into `handler`.
  /// Returns the number received.  Call on EPOLLIN.
  int drain(const RecvHandler& handler);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace bytecache::net
