#include "net/control.h"

#include <sys/epoll.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace bytecache::net {

namespace {

bool known_command(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(ControlCommand::kPing) &&
         raw <= static_cast<std::uint16_t>(ControlCommand::kShutdown);
}

}  // namespace

util::Bytes ControlRequest::serialize() const {
  util::Bytes out;
  out.reserve(8 + payload.size());
  util::put_u32(out, kControlRequestMagic);
  util::put_u16(out, static_cast<std::uint16_t>(command));
  util::put_u16(out, static_cast<std::uint16_t>(payload.size()));
  util::append(out, payload);
  return out;
}

std::optional<ControlRequest> ControlRequest::parse(util::BytesView wire) {
  if (wire.size() < 8) return std::nullopt;
  std::size_t off = 0;
  if (util::get_u32(wire, off) != kControlRequestMagic) return std::nullopt;
  const std::uint16_t raw = util::get_u16(wire, off);
  const std::uint16_t len = util::get_u16(wire, off);
  if (!known_command(raw)) return std::nullopt;
  if (wire.size() - off != len) return std::nullopt;  // exact, no trailer
  ControlRequest req;
  req.command = static_cast<ControlCommand>(raw);
  req.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(off),
                     wire.end());
  return req;
}

util::Bytes ControlResponse::serialize() const {
  util::Bytes out;
  out.reserve(9 + payload.size());
  util::put_u32(out, kControlResponseMagic);
  util::put_u16(out, static_cast<std::uint16_t>(command));
  util::put_u8(out, ok ? 1 : 0);
  util::put_u16(out, static_cast<std::uint16_t>(payload.size()));
  util::append(out, payload);
  return out;
}

std::optional<ControlResponse> ControlResponse::parse(util::BytesView wire) {
  if (wire.size() < 9) return std::nullopt;
  std::size_t off = 0;
  if (util::get_u32(wire, off) != kControlResponseMagic) return std::nullopt;
  const std::uint16_t raw = util::get_u16(wire, off);
  const std::uint8_t status = util::get_u8(wire, off);
  const std::uint16_t len = util::get_u16(wire, off);
  if (!known_command(raw) || status > 1) return std::nullopt;
  if (wire.size() - off != len) return std::nullopt;
  ControlResponse resp;
  resp.command = static_cast<ControlCommand>(raw);
  resp.ok = status == 1;
  resp.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(off),
                      wire.end());
  return resp;
}

ControlServer::ControlServer(EventLoop& loop, const SocketAddr& addr,
                             ControlHandlers handlers)
    : loop_(loop), handlers_(std::move(handlers)) {
  BC_CHECK(socket_.bind(addr))
      << "control bind " << addr.to_string() << ": " << std::strerror(errno);
  loop_.add_fd(socket_.fd(), EPOLLIN, [this](std::uint32_t) {
    socket_.drain([this](util::BytesView wire, const SocketAddr& from) {
      on_request(wire, from);
    });
  });
}

ControlServer::~ControlServer() { loop_.remove_fd(socket_.fd()); }

void ControlServer::on_request(util::BytesView wire, const SocketAddr& from) {
  auto req = ControlRequest::parse(wire);
  if (!req) {
    ++stats_.malformed;
    return;  // never answer garbage
  }
  ++stats_.requests;
  bool shutdown_after = false;
  ControlResponse resp = handle(*req, shutdown_after);
  if (!resp.ok) ++stats_.errors;
  const util::Bytes out = resp.serialize();
  (void)socket_.send_to(from, out);
  // The shutdown response went out first, so the client's request/
  // response exchange completes even though the loop is about to end.
  if (shutdown_after && handlers_.shutdown) handlers_.shutdown();
}

ControlResponse ControlServer::handle(const ControlRequest& req,
                                      bool& shutdown_after) {
  ControlResponse resp;
  resp.command = req.command;
  const auto text = [&resp](std::string_view s) {
    resp.payload.assign(s.begin(), s.end());
  };
  switch (req.command) {
    case ControlCommand::kPing:
      resp.ok = true;
      text("pong");
      break;
    case ControlCommand::kStats: {
      if (!handlers_.stats_jsonl) {
        text("err: no stats handler");
        break;
      }
      std::string snap = handlers_.stats_jsonl();
      if (snap.size() > kMaxControlPayload) {
        // Clip whole lines so the truncated dump stays valid JSONL.
        const std::size_t cut = snap.rfind('\n', kMaxControlPayload);
        snap.resize(cut == std::string::npos ? 0 : cut + 1);
      }
      resp.ok = true;
      text(snap);
      break;
    }
    case ControlCommand::kFlushCache:
      if (!handlers_.flush_cache) {
        text("err: no flush handler");
        break;
      }
      resp.ok = handlers_.flush_cache();
      text(resp.ok ? "ok" : "err: flush refused");
      break;
    case ControlCommand::kSwitchPolicy: {
      if (!handlers_.switch_policy) {
        text("err: no policy handler");
        break;
      }
      const std::string_view name(
          reinterpret_cast<const char*>(req.payload.data()),
          req.payload.size());
      resp.ok = handlers_.switch_policy(name);
      text(resp.ok ? "ok" : "err: unknown or unsupported policy");
      break;
    }
    case ControlCommand::kShutdown:
      resp.ok = true;
      text("shutting down");
      shutdown_after = true;
      break;
  }
  return resp;
}

}  // namespace bytecache::net
