// The middlebox cores: EncoderGateway / DecoderGateway adapted to the
// transport seam (DESIGN.md §12.2).
//
// An EncoderTunnel turns plain application datagrams into tunnel
// datagrams: each plain datagram becomes one synthesized IP/UDP packet
// on a per-source virtual flow, runs through the DRE encoder, and goes
// to the peer as one serialized packet.  Reverse tunnel datagrams are
// the decoder's control feedback (core/control.h) and are fed back into
// the encoder gateway.
//
// A DecoderTunnel is the mirror: tunnel datagrams are parsed, decoded
// (undecodable packets are dropped, control feedback is emitted through
// the same transport), and the reconstructed application bytes are
// handed to the plain-side sink.
//
// Both tunnels are backend-agnostic: the same objects run over a
// UdpTunnelTransport (two real processes) or over a SimTransportPair
// (one process, modeled wire).  Virtual flow addressing is
// deterministic — source N of a run maps to the same virtual IP pair in
// every backend — which is what makes wire_ratio comparable across
// backends down to the byte.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/factory.h"
#include "gateway/gateways.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "packet/ipv4.h"

namespace bytecache::net {

struct TunnelConfig {
  /// Codec construction (policy, DreParams, telemetry knobs).  The
  /// `metrics` field is used as every gateway does: an optional parent
  /// registry; each tunnel keeps its own registry regardless.
  core::GatewayConfig gateway;

  /// Virtual addressing of synthesized flows.  The first plain source
  /// becomes virt_client_ip, the next virt_client_ip + 1, ...; all flows
  /// share virt_server_ip, so host-pair flow keys stay per-source.
  std::uint32_t virt_client_ip = packet::make_ip(10, 0, 0, 1);
  std::uint32_t virt_server_ip = packet::make_ip(10, 0, 1, 1);
  std::uint16_t virt_src_port = 5004;
  std::uint16_t virt_dst_port = 5006;
};

struct TunnelStats {
  std::uint64_t plain_in = 0;           // application datagrams accepted
  std::uint64_t plain_bytes_in = 0;     // their payload bytes
  std::uint64_t plain_out = 0;          // datagrams delivered plain-side
  std::uint64_t plain_bytes_out = 0;
  std::uint64_t tunnel_malformed = 0;   // tunnel datagrams that failed to
                                        // parse as IP packets
  std::uint64_t flows = 0;              // distinct plain sources seen
  std::uint64_t oversize_dropped = 0;   // plain datagrams too big to frame
};

[[nodiscard]] constexpr auto stats_fields(const TunnelStats*) {
  using S = TunnelStats;
  return obs::field_table<S>(
      obs::Field<S>{"plain_in", &S::plain_in},
      obs::Field<S>{"plain_bytes_in", &S::plain_bytes_in},
      obs::Field<S>{"plain_out", &S::plain_out},
      obs::Field<S>{"plain_bytes_out", &S::plain_bytes_out},
      obs::Field<S>{"tunnel_malformed", &S::tunnel_malformed},
      obs::Field<S>{"flows", &S::flows},
      obs::Field<S>{"oversize_dropped", &S::oversize_dropped});
}

using obs::merge_into;
using obs::reset;

class EncoderTunnel {
 public:
  /// `tunnel` (not owned; must outlive this) carries framed traffic to
  /// the decoder peer; its receive handler is claimed by this tunnel.
  EncoderTunnel(const TunnelConfig& config, Transport& tunnel);

  /// One application datagram from plain source `source_key` (any
  /// stable per-source id; the UDP front end uses SocketAddr::key()).
  void on_plain_datagram(util::BytesView data, std::uint64_t source_key);

  /// Runtime control (net/control.h plugs these in).
  [[nodiscard]] bool flush_cache();
  [[nodiscard]] bool switch_policy(std::string_view name);

  /// Everything this middlebox knows: gateway + codec + cache metrics
  /// (via the gateway provider), net.tunnel.* transport counters, and
  /// net.plain.* tunnel counters.
  [[nodiscard]] obs::Snapshot snapshot() const { return metrics_.snapshot(); }

  [[nodiscard]] const TunnelStats& stats() const { return stats_; }
  [[nodiscard]] gateway::EncoderGateway& gw() { return gw_; }

 private:
  void on_tunnel_datagram(util::BytesView wire);

  TunnelConfig config_;
  Transport& tunnel_;
  TunnelStats stats_;
  // Declared before the gateway: the gateway registers itself as a
  // snapshot provider on this registry during construction.
  obs::MetricsRegistry metrics_;
  gateway::EncoderGateway gw_;
  std::unordered_map<std::uint64_t, std::uint32_t> flow_ips_;
  util::Bytes payload_scratch_;  // UDP header + data, reused per datagram
  util::Bytes wire_scratch_;     // serialized packet, reused per datagram
};

class DecoderTunnel {
 public:
  /// Called with each reconstructed application datagram.
  using PlainSink = std::function<void(util::BytesView data)>;

  DecoderTunnel(const TunnelConfig& config, Transport& tunnel,
                PlainSink plain_sink);

  [[nodiscard]] bool flush_cache();

  [[nodiscard]] obs::Snapshot snapshot() const { return metrics_.snapshot(); }
  [[nodiscard]] const TunnelStats& stats() const { return stats_; }
  [[nodiscard]] gateway::DecoderGateway& gw() { return gw_; }

 private:
  void on_tunnel_datagram(util::BytesView wire);

  Transport& tunnel_;
  PlainSink plain_sink_;
  TunnelStats stats_;
  // Declared before the gateway (provider registration at construction).
  obs::MetricsRegistry metrics_;
  gateway::DecoderGateway gw_;
  util::Bytes wire_scratch_;  // serialized feedback packet, reused
};

}  // namespace bytecache::net
