#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace bytecache::net {

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  BC_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  BC_CHECK(wake_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  BC_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0)
      << "epoll_ctl(wake): " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  // Registered fds belong to their owners; only the loop's own fds are
  // closed here.  Entries left registered simply die with the epoll fd.
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  BC_CHECK(fd >= 0) << "add_fd on negative fd";
  BC_CHECK(fd != wake_fd_) << "add_fd on the loop's wake fd";
  auto entry = std::make_shared<Entry>();
  entry->handler = std::move(handler);
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  auto it = entries_.find(fd);
  if (it != entries_.end()) {
    // Replacing: kill the old registration first so a pending dispatch
    // of this very batch cannot run the superseded handler.
    it->second->alive = false;
    it->second = entry;
    BC_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
        << "epoll_ctl(mod " << fd << "): " << std::strerror(errno);
    return;
  }
  BC_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(add " << fd << "): " << std::strerror(errno);
  entries_.emplace(fd, std::move(entry));
}

void EventLoop::remove_fd(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return;
  // Mark dead *before* erasing: dispatch holds its own reference and
  // checks this flag, so an in-batch removal drops pending events
  // instead of calling through a dangling owner (the PR 1 lesson).
  it->second->alive = false;
  entries_.erase(it);
  // The fd may already be closed by the owner; EBADF/ENOENT are fine.
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::run_once(int timeout_ms) {
  epoll_event events[64];
  int n;
  do {
    n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  BC_CHECK(n >= 0) << "epoll_wait: " << std::strerror(errno);
  int handled = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t drain = 0;
      (void)!::read(wake_fd_, &drain, sizeof drain);
      continue;
    }
    auto it = entries_.find(fd);
    if (it == entries_.end()) continue;  // removed earlier in this batch
    // Keep the entry alive across the call: the handler may remove (or
    // destroy the owner of) its own registration.
    const std::shared_ptr<Entry> entry = it->second;
    if (!entry->alive) continue;
    entry->handler(events[i].events);
    ++handled;
  }
  return handled;
}

void EventLoop::run() {
  BC_CHECK(!running_) << "EventLoop::run is not reentrant";
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    run_once(-1);
  }
  running_ = false;
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  // write(2) on an eventfd is async-signal-safe; ignore a full counter.
  (void)!::write(wake_fd_, &one, sizeof one);
}

// ------------------------------------------------------------------ Timer --

Timer::Timer(EventLoop& loop, std::function<void()> on_fire)
    : loop_(loop), on_fire_(std::move(on_fire)) {
  fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  BC_CHECK(fd_ >= 0) << "timerfd_create: " << std::strerror(errno);
  loop_.add_fd(fd_, EPOLLIN, [this](std::uint32_t) { on_readable(); });
}

Timer::~Timer() {
  loop_.remove_fd(fd_);
  ::close(fd_);
}

void Timer::arm(std::chrono::nanoseconds value,
                std::chrono::nanoseconds interval) {
  const auto split = [](std::chrono::nanoseconds d) {
    timespec ts{};
    ts.tv_sec = std::chrono::duration_cast<std::chrono::seconds>(d).count();
    ts.tv_nsec = (d % std::chrono::seconds(1)).count();
    return ts;
  };
  itimerspec spec{};
  spec.it_value = split(value);
  spec.it_interval = split(interval);
  BC_CHECK(timerfd_settime(fd_, 0, &spec, nullptr) == 0)
      << "timerfd_settime: " << std::strerror(errno);
}

void Timer::start_oneshot(std::chrono::nanoseconds delay) {
  // A zero it_value disarms a timerfd; clamp to the next tick instead.
  if (delay <= std::chrono::nanoseconds::zero()) {
    delay = std::chrono::nanoseconds(1);
  }
  periodic_ = false;
  armed_ = true;
  arm(delay, std::chrono::nanoseconds::zero());
}

void Timer::start_periodic(std::chrono::nanoseconds period) {
  BC_CHECK(period > std::chrono::nanoseconds::zero())
      << "periodic timer needs a positive period";
  periodic_ = true;
  armed_ = true;
  arm(period, period);
}

void Timer::cancel() {
  armed_ = false;
  periodic_ = false;
  arm(std::chrono::nanoseconds::zero(), std::chrono::nanoseconds::zero());
}

void Timer::on_readable() {
  std::uint64_t expirations = 0;
  if (::read(fd_, &expirations, sizeof expirations) != sizeof expirations) {
    return;  // spurious wake-up (cancelled between poll and read)
  }
  if (!armed_) return;
  if (!periodic_) armed_ = false;  // before the callback: it may re-arm
  ++fired_;
  // Invoke a local copy: the callback may destroy this Timer, and a
  // std::function must not die mid-invocation.
  const std::function<void()> fire = on_fire_;
  fire();
}

}  // namespace bytecache::net
