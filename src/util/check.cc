#include "util/check.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace bytecache::util {
namespace {

CheckFailureHandler& handler_slot() {
  static CheckFailureHandler handler;  // empty = default (print + abort)
  return handler;
}

std::uint64_t& failure_count() {
  static std::uint64_t count = 0;
  return count;
}

}  // namespace

CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler) {
  CheckFailureHandler prev = std::move(handler_slot());
  handler_slot() = std::move(handler);
  return prev;
}

std::uint64_t check_failure_count() { return failure_count(); }

void reset_check_failure_count() { failure_count() = 0; }

namespace detail {

CheckMessage::~CheckMessage() {
  CheckFailure failure{expr_, file_, line_, stream_.str()};
  ++failure_count();
  if (handler_slot()) {
    handler_slot()(failure);
    return;
  }
  std::fprintf(stderr, "%s:%d: check failed: %s%s%s\n", failure.file,
               failure.line, failure.expr,
               failure.message.empty() ? "" : " — ",
               failure.message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace bytecache::util
