// Clang thread-safety annotations for the concurrency layer.
//
// The codebase has no mutexes by design (tools/lint.py bc-nolock, DESIGN.md
// §8): all cross-thread state is SPSC rings plus atomics, and correctness
// rests on *role discipline* — exactly one thread plays the producer of a
// ring, exactly one the consumer, exactly one the driver of a sharded
// gateway.  Clang's thread-safety analysis (-Wthread-safety) can enforce
// that discipline at compile time if the roles are expressed as
// capabilities: a ThreadRole is a zero-cost fictional capability, a
// ScopedRole states "this scope runs on the thread holding that role", and
// BC_GUARDED_BY / BC_REQUIRES tie data and functions to roles.  Under any
// other compiler every macro expands to nothing.
//
// The macro set mirrors the attribute names from the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); BC_ prefixes
// keep them greppable and avoid clashing with third-party headers.
//
// Conventions (DESIGN.md §11):
//   - Non-atomic fields touched by exactly one role: BC_GUARDED_BY(role).
//   - Functions that must run under a role: BC_REQUIRES(role).
//   - Entry points that *define* a role boundary (a public driver-thread
//     API, a worker loop) acquire it with ScopedRole; interior helpers
//     take BC_REQUIRES and never re-acquire.
//   - Atomics are never guarded: they are safe from any thread by
//     construction, and guarding them would force roles onto readers that
//     the quiescence contract deliberately leaves free (audit, stats).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BC_THREAD_ANNOTATION
#define BC_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

#define BC_CAPABILITY(x) BC_THREAD_ANNOTATION(capability(x))
#define BC_SCOPED_CAPABILITY BC_THREAD_ANNOTATION(scoped_lockable)
#define BC_GUARDED_BY(x) BC_THREAD_ANNOTATION(guarded_by(x))
#define BC_PT_GUARDED_BY(x) BC_THREAD_ANNOTATION(pt_guarded_by(x))
#define BC_ACQUIRED_BEFORE(...) BC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define BC_ACQUIRED_AFTER(...) BC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define BC_REQUIRES(...) \
  BC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BC_REQUIRES_SHARED(...) \
  BC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define BC_ACQUIRE(...) BC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BC_ACQUIRE_SHARED(...) \
  BC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define BC_RELEASE(...) BC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BC_RELEASE_SHARED(...) \
  BC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define BC_TRY_ACQUIRE(...) \
  BC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define BC_EXCLUDES(...) BC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BC_ASSERT_CAPABILITY(x) BC_THREAD_ANNOTATION(assert_capability(x))
#define BC_RETURN_CAPABILITY(x) BC_THREAD_ANNOTATION(lock_returned(x))
#define BC_NO_THREAD_SAFETY_ANALYSIS \
  BC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bytecache::util {

/// A fictional capability naming a thread role (ring producer, ring
/// consumer, gateway driver).  Costs one byte and no cycles; exists only
/// so Clang can prove that role-owned data is touched exclusively by code
/// that has claimed the role.  Claiming is a static assertion of the
/// threading contract, not a lock: two threads claiming the same role is
/// the bug the surrounding design (one worker per shard, one driver
/// thread) must prevent.
class BC_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Statically assume the calling thread holds this role from here on
  /// (for scopes where ScopedRole's RAII shape does not fit).
  void assert_held() const BC_ASSERT_CAPABILITY() {}
};

/// RAII claim of a ThreadRole for the current scope: "this code runs on
/// the thread that owns `role`".  Compiles to nothing; under Clang it
/// makes BC_GUARDED_BY / BC_REQUIRES violations inside the scope a
/// compile error.
class BC_SCOPED_CAPABILITY ScopedRole {
 public:
  explicit ScopedRole(const ThreadRole& role) BC_ACQUIRE(role) {
    (void)role;  // the claim is purely static
  }
  ~ScopedRole() BC_RELEASE() {}

  ScopedRole(const ScopedRole&) = delete;
  ScopedRole& operator=(const ScopedRole&) = delete;
};

}  // namespace bytecache::util
