#include "util/rng.h"

#include <cmath>

namespace bytecache::util {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next_u64();  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit && limit != 0);
  return lo + v % range;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF over the (small) support; n is bounded by workload pools.
  double total = 0.0;
  for (std::size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double u = next_double() * total;
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u < acc) return i - 1;
  }
  return n - 1;
}

Rng Rng::fork(std::uint64_t stream) const {
  std::uint64_t mix = seed_ ^ (0xA5A5A5A55A5A5A5Aull + stream * 0xD1B54A32D192ED03ull);
  return Rng(splitmix64(mix));
}

}  // namespace bytecache::util
