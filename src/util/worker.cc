#include "util/worker.h"

#include <chrono>
#include <thread>

namespace bytecache::util {

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

void Backoff::pause() {
  ++spins_;
  if (spins_ < 64) {
    cpu_relax();
  } else if (spins_ < 128) {
    std::this_thread::yield();
  } else {
    // Saturate here: long waits (a peer descheduled, a ring drained only
    // between benchmark passes) should cost microseconds of latency, not
    // a spinning core.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

}  // namespace bytecache::util
