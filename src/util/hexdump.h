// Human-readable hex dumps for debugging and example output.
#pragma once

#include <string>

#include "util/bytes.h"

namespace bytecache::util {

/// Formats `data` as a classic 16-bytes-per-row hex + ASCII dump.
[[nodiscard]] std::string hexdump(BytesView data, std::size_t max_bytes = 256);

/// Formats `data` as a plain lowercase hex string ("deadbeef").
[[nodiscard]] std::string to_hex(BytesView data);

}  // namespace bytecache::util
