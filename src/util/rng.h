// Deterministic pseudo-random number generation for simulation.
//
// Every stochastic component (loss models, workload generators, experiment
// trials) takes an explicit seed so that runs are exactly reproducible.
// The generator is xoshiro256** seeded via SplitMix64 — fast, good quality,
// and independent of the standard library's unspecified distributions
// (we implement our own so results are identical across platforms).
#pragma once

#include <cstdint>

namespace bytecache::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with platform-independent distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Zipf-like rank in [0, n): probability ~ 1/(rank+1)^s.  Used by the
  /// workload generators to model temporal locality of web content.
  std::size_t zipf(std::size_t n, double s);

  /// Derives an independent child generator (stable function of this
  /// generator's seed and `stream`, does not consume state).
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace bytecache::util
