// Basic byte-buffer vocabulary types shared by every module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bytecache::util {

/// The project-wide owning byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes buffer from a string literal / std::string (no NUL added).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as text (useful in tests and examples).
inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Big-endian (network order) scalar writers; append to `out`.
inline void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }
inline void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
inline void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
inline void put_u64(Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

/// Big-endian scalar readers; `off` is advanced past the value.
/// Callers must bounds-check before reading (these do not throw).
inline std::uint8_t get_u8(BytesView in, std::size_t& off) {
  return in[off++];
}
inline std::uint16_t get_u16(BytesView in, std::size_t& off) {
  std::uint16_t v = static_cast<std::uint16_t>(in[off] << 8 | in[off + 1]);
  off += 2;
  return v;
}
inline std::uint32_t get_u32(BytesView in, std::size_t& off) {
  std::uint32_t v = static_cast<std::uint32_t>(in[off]) << 24 |
                    static_cast<std::uint32_t>(in[off + 1]) << 16 |
                    static_cast<std::uint32_t>(in[off + 2]) << 8 |
                    static_cast<std::uint32_t>(in[off + 3]);
  off += 4;
  return v;
}
inline std::uint64_t get_u64(BytesView in, std::size_t& off) {
  std::uint64_t hi = get_u32(in, off);
  std::uint64_t lo = get_u32(in, off);
  return hi << 32 | lo;
}

}  // namespace bytecache::util
