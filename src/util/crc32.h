// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// The DRE shim header carries a CRC32 of the original payload so the decoder
// can verify a reconstruction and convert any cache desynchronization
// (reordering, corruption, collision) into a clean drop rather than silently
// delivering wrong bytes.  See DESIGN.md "Decoder safety".
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace bytecache::util {

/// Computes CRC32 over `data`, optionally continuing from a previous value.
[[nodiscard]] std::uint32_t crc32(BytesView data, std::uint32_t seed = 0);

}  // namespace bytecache::util
