#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bytecache::util {
namespace {

LogLevel level_from_env() {
  // Runs exactly once, during static init of g_level, before any worker
  // thread exists — nothing can race the environment here.
  const char* env = std::getenv("BYTECACHE_LOG");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{level_from_env()};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const char* file, int line,
              const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  std::fprintf(stderr, "[%s] %s:%d: %s\n", level_name(level), base, line,
               msg.c_str());
}

}  // namespace bytecache::util
