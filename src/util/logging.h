// Minimal leveled logger.
//
// The simulator is deterministic and fast; logging is for debugging and for
// the examples' narrative output.  Levels: ERROR < WARN < INFO < DEBUG.
// The global level defaults to WARN and can be raised programmatically or
// via the BYTECACHE_LOG environment variable (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace bytecache::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Returns the process-wide log level (reads BYTECACHE_LOG once).
LogLevel log_level();

/// Overrides the process-wide log level.
void set_log_level(LogLevel level);

/// Emits one formatted log line to stderr (internal; use the macros).
void log_line(LogLevel level, const char* file, int line,
              const std::string& msg);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { log_line(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace bytecache::util

#define BC_LOG(level)                                                     \
  if (::bytecache::util::log_level() < ::bytecache::util::LogLevel::level) \
    ;                                                                     \
  else                                                                    \
    ::bytecache::util::detail::LogMessage(                                \
        ::bytecache::util::LogLevel::level, __FILE__, __LINE__)           \
        .stream()

#define BC_ERROR() BC_LOG(kError)
#define BC_WARN() BC_LOG(kWarn)
#define BC_INFO() BC_LOG(kInfo)
#define BC_DEBUG() BC_LOG(kDebug)
