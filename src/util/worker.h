// Small helpers for the gateway worker threads.
//
// Concurrency in this codebase lives only at the gateway/ring layer (see
// tools/lint.py bc-nolock); these are the few primitives that layer
// needs: a polite CPU pause for spin loops and an adaptive backoff that
// escalates from pausing through yielding to napping, so a worker
// waiting on an empty ring neither burns a core nor adds milliseconds of
// wake-up latency.
//
// Thread-safety contract (util/thread_annotations.h, DESIGN.md §11): a
// Backoff instance is thread-local by construction — each spin loop
// declares its own on its own stack — so it carries no role capability;
// the roles live on the rings the loop is waiting on (SpscRing's
// producer_role / consumer_role) and on the gateway driver (see
// gateway/sharded_gateways.h).
#pragma once

#include <cstdint>

#include "util/thread_annotations.h"

namespace bytecache::util {

/// Architecture-appropriate spin-loop hint (x86 `pause`, arm `yield`);
/// a no-op elsewhere.
void cpu_relax();

/// Adaptive spin-wait: call pause() each time an expected condition has
/// not happened yet, reset() when it has.  Escalates from cpu_relax()
/// (cheap, keeps the pipeline polite) through std::this_thread::yield()
/// to a short sleep, so a stalled peer cannot make the caller burn a
/// full core — which matters when the shards outnumber the cores.
class Backoff {
 public:
  void pause();
  void reset() { spins_ = 0; }

 private:
  std::uint32_t spins_ = 0;
};

}  // namespace bytecache::util
