#include "util/hexdump.h"

#include <cctype>
#include <cstdio>

namespace bytecache::util {

std::string hexdump(BytesView data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  char line[128];
  for (std::size_t row = 0; row < n; row += 16) {
    int pos = std::snprintf(line, sizeof line, "%08zx  ", row);
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < n) {
        pos += std::snprintf(line + pos, sizeof line - pos, "%02x ",
                             data[row + i]);
      } else {
        pos += std::snprintf(line + pos, sizeof line - pos, "   ");
      }
      if (i == 7) pos += std::snprintf(line + pos, sizeof line - pos, " ");
    }
    pos += std::snprintf(line + pos, sizeof line - pos, " |");
    for (std::size_t i = 0; i < 16 && row + i < n; ++i) {
      unsigned char c = data[row + i];
      line[pos++] = std::isprint(c) ? static_cast<char>(c) : '.';
    }
    line[pos++] = '|';
    line[pos] = '\0';
    out += line;
    out += '\n';
  }
  if (n < data.size()) {
    out += "... (" + std::to_string(data.size() - n) + " more bytes)\n";
  }
  return out;
}

std::string to_hex(BytesView data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

}  // namespace bytecache::util
