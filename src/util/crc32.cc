#include "util/crc32.h"

#include <array>

namespace bytecache::util {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b) {
      c = (c & 1u) ? (c >> 1) ^ kPoly : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t seed) {
  std::uint32_t c = ~seed;
  for (std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace bytecache::util
