#include "util/crc32.h"

#include <array>

namespace bytecache::util {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

// Slice-by-8 (Intel's technique): kTables[0] is the classic byte table;
// kTables[k][i] advances a byte through k further zero bytes, so eight
// table lookups absorb eight input bytes per step instead of one.  The
// resulting CRC is bit-identical to the bytewise loop — the decoder
// profile showed the bytewise version eating ~44% of end-to-end codec
// time (it runs over every payload at both gateways).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int b = 0; b < 8; ++b) {
      c = (c & 1u) ? (c >> 1) ^ kPoly : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

/// Little-endian 32-bit load composed from bytes (endian- and
/// alignment-safe; compilers fold it into a single load where legal).
constexpr std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t seed) {
  std::uint32_t c = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace bytecache::util
