// Invariant-check macros backing the deep audit() methods.
//
// Three tiers, all message-capturing (stream into them like BC_LOG):
//
//   BC_CHECK(cond)  — always compiled and evaluated, in every build.  Use
//                     for cheap conditions whose violation means memory is
//                     already corrupt.
//   BC_ASSERT(cond) — compiled in debug and audit builds; compiled out
//                     (condition not evaluated) in plain Release.
//   BC_AUDIT(cond)  — the deep-audit tier: compiled only when the build
//                     defines BYTECACHE_AUDIT (the default for every
//                     configuration except Release, and forced on by
//                     BYTECACHE_SANITIZE).  audit() methods guard their
//                     O(n) walks with `if (!kAuditEnabled) return;` so a
//                     Release build pays nothing.
//
// A failed check prints the expression, location and captured message and
// calls std::abort() — under ASan/UBSan that surfaces as a test failure
// with a stack trace.  Tests install a recording handler instead via
// set_check_failure_handler() so audits can be exercised without dying.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#if defined(BYTECACHE_AUDIT) && BYTECACHE_AUDIT
#define BC_AUDIT_ENABLED 1
#else
#define BC_AUDIT_ENABLED 0
#endif

namespace bytecache::util {

/// True when BC_AUDIT conditions are compiled in; audit() methods return
/// immediately when false so their traversals fold away in Release.
inline constexpr bool kAuditEnabled = BC_AUDIT_ENABLED != 0;

/// Everything known about one failed check.
struct CheckFailure {
  const char* expr = nullptr;  // stringified condition
  const char* file = nullptr;
  int line = 0;
  std::string message;  // whatever was streamed into the macro
};

using CheckFailureHandler = std::function<void(const CheckFailure&)>;

/// Installs `handler` to be called instead of the default
/// (print + std::abort) and returns the previous handler; pass nullptr to
/// restore the default.  Intended for tests that deliberately trip audits.
CheckFailureHandler set_check_failure_handler(CheckFailureHandler handler);

/// Number of check failures seen by the *default* handler before aborting
/// plus those swallowed by custom handlers (monotonic; tests reset it).
[[nodiscard]] std::uint64_t check_failure_count();
void reset_check_failure_count();

namespace detail {

/// Collects the streamed message; fires the failure handler on destruction.
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;
  ~CheckMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace bytecache::util

// `if (cond) ; else <stream>` mirrors BC_LOG: the message operands are
// evaluated only on failure, and the macro swallows a trailing `<< ...`.
#define BC_CHECK(cond)                                                \
  if (cond)                                                           \
    ;                                                                 \
  else                                                                \
    ::bytecache::util::detail::CheckMessage(#cond, __FILE__, __LINE__) \
        .stream()

// Compiled-out form: `true || (cond)` never evaluates `cond` (or the
// streamed operands) but keeps both type-checked, so disabled builds
// cannot rot the check expressions.
#if BC_AUDIT_ENABLED || !defined(NDEBUG)
#define BC_ASSERT(cond) BC_CHECK(cond)
#else
#define BC_ASSERT(cond) BC_CHECK(true || (cond))
#endif

#if BC_AUDIT_ENABLED
#define BC_AUDIT(cond) BC_CHECK(cond)
#else
#define BC_AUDIT(cond) BC_CHECK(true || (cond))
#endif
