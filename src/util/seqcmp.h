// Wrap-aware 32-bit TCP sequence number comparison (RFC 793 / RFC 1323).
//
// The TCP Sequence Number encoding algorithm (paper Fig. 7, line B.7)
// requires comparing the sequence number of the cached packet against the
// current packet.  Sequence numbers wrap modulo 2^32, so ordinary `<` is
// wrong across the wrap; the standard idiom is signed distance.
#pragma once

#include <cstdint>

namespace bytecache::util {

/// True if sequence number `a` is strictly before `b` (mod 2^32).
[[nodiscard]] constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

[[nodiscard]] constexpr bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

[[nodiscard]] constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) > 0;
}

[[nodiscard]] constexpr bool seq_ge(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

/// Number of bytes from `a` to `b` assuming `a` precedes `b` (mod 2^32).
[[nodiscard]] constexpr std::uint32_t seq_diff(std::uint32_t b,
                                               std::uint32_t a) {
  return b - a;
}

}  // namespace bytecache::util
