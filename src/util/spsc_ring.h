// Fixed-capacity single-producer / single-consumer ring.
//
// The sharded gateways (gateway/sharded_gateways.h) move packets between
// the submitting thread and the per-shard workers through these rings:
// one producer thread pushes, one consumer thread pops, and the only
// shared state is a pair of monotonic indices.  The classic Lamport
// queue with cached counterpart indices: the producer re-reads the
// consumer's index (an acquire load) only when the ring looks full, and
// vice versa, so the steady-state cost per transfer is one relaxed load,
// one move, and one release store — no locks, no allocation after
// construction, wait-free for both sides.
//
// Indices never wrap in practice (2^64 pushes at one per nanosecond is
// five centuries); the slot index is the low bits of the monotonic
// counter, which requires the capacity to be a power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace bytecache::util {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  // The producer and consumer sides hold raw pointers to the atomics;
  // relocation would tear the ring out from under a peer thread.
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // The role capabilities of the two sides (util/thread_annotations.h):
  // the thread that pushes claims `producer_role`, the thread that pops
  // claims `consumer_role` (ScopedRole at the loop or call boundary), and
  // Clang then proves the side-local cache fields never cross over.
  ThreadRole producer_role;
  ThreadRole consumer_role;

  /// Producer side.  Moves `v` into the ring and returns true, or leaves
  /// it untouched and returns false when the ring is full.
  bool try_push(T& v) BC_REQUIRES(producer_role) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;
    }
    slots_[static_cast<std::size_t>(t) & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, batched.  Moves up to `n` elements of `items` into
  /// the ring and returns the count actually pushed (0 when full;
  /// elements past the count are untouched).  The whole batch is
  /// published with ONE release store, so a burst of b transfers costs
  /// one synchronizing store instead of b — the point of the burst data
  /// plane (gateway/sharded_gateways.h drains rings in bursts).
  std::size_t push_burst(T* items, std::size_t n)
      BC_REQUIRES(producer_role) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    std::uint64_t free = mask_ + 1 - (t - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = mask_ + 1 - (t - head_cache_);
    }
    const std::size_t count =
        n < free ? n : static_cast<std::size_t>(free);
    for (std::size_t i = 0; i < count; ++i) {
      slots_[static_cast<std::size_t>(t + i) & mask_] = std::move(items[i]);
    }
    if (count > 0) tail_.store(t + count, std::memory_order_release);
    return count;
  }

  /// Consumer side.  Moves the oldest element into `out` and returns
  /// true, or returns false when the ring is empty.
  bool try_pop(T& out) BC_REQUIRES(consumer_role) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(h) & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched.  Moves up to `n` oldest elements into
  /// `out` and returns the count popped (0 when empty).  The whole
  /// batch is retired with ONE release store (see push_burst).
  std::size_t pop_burst(T* out, std::size_t n) BC_REQUIRES(consumer_role) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = tail_cache_ - h;
    if (avail < n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - h;
    }
    const std::size_t count =
        n < avail ? n : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = std::move(slots_[static_cast<std::size_t>(h + i) & mask_]);
    }
    if (count > 0) head_.store(h + count, std::memory_order_release);
    return count;
  }

  /// Consumer-side emptiness probe (exact for the consumer; a snapshot
  /// for anyone else).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Elements currently in the ring (snapshot; exact only when one side
  /// is quiescent).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Deep invariant audit (BC_AUDIT; call only while both sides are
  /// quiescent): the indices are ordered, their distance fits the
  /// capacity, and the capacity is the promised power of two.
  void audit() const {
    if (!kAuditEnabled) return;
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    BC_AUDIT(h <= t) << "consumer index " << h << " passed producer " << t;
    BC_AUDIT(t - h <= mask_ + 1)
        << "ring holds " << (t - h) << " elements but capacity is "
        << (mask_ + 1);
    BC_AUDIT((slots_.size() & (slots_.size() - 1)) == 0)
        << "capacity " << slots_.size() << " is not a power of two";
  }

 private:
  static constexpr std::size_t kCacheLine = 64;

  std::size_t mask_ = 0;
  // Slots are shared but index-disjoint (producer writes slot t, consumer
  // reads slot h, and h < t by the index protocol) — a partition no
  // per-field capability can express, so the atomics' acquire/release
  // pairs carry the handoff and the field stays unguarded.
  std::vector<T> slots_;
  // Producer-owned line: its index plus its cached view of the consumer.
  // The atomic indices themselves stay unguarded: both sides load them by
  // protocol; only the single-side cache fields are role-owned.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ BC_GUARDED_BY(producer_role) = 0;
  // Consumer-owned line.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ BC_GUARDED_BY(consumer_role) = 0;
};

}  // namespace bytecache::util
