// A full HTTP exchange over the paper's Fig. 3 topology.
//
// One HttpSession owns the byte-caching gateway pair and the two links;
// each fetch() opens a fresh connection (new ports/ISN, as HTTP/1.0
// does), sends the textual request client -> server on the reverse path,
// and streams the response back through encoder -> lossy link -> decoder.
// Because the gateway caches persist across fetches, repeated header
// boilerplate and repeated objects are eliminated across responses —
// byte caching's inter-connection savings, end to end.
#pragma once

#include <memory>
#include <string>

#include "app/http.h"
#include "core/factory.h"
#include "gateway/gateways.h"
#include "gateway/pipeline.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace bytecache::app {

struct FetchResult {
  bool ok = false;          // completed and parsed
  int status = 0;           // HTTP status code
  double duration_s = 0.0;  // request sent -> response complete
  HttpResponse response;    // valid when ok
  bool stalled = false;     // a TCP half aborted or the deadline passed
};

class HttpSession {
 public:
  HttpSession(sim::Simulator& sim, const gateway::PipelineConfig& config,
              HttpServer server);
  ~HttpSession();  // out of line: Exchange is incomplete here

  /// Fetches one object, driving the simulator until the exchange
  /// finishes or `deadline` elapses.
  FetchResult fetch(const std::string& path,
                    sim::SimTime deadline = sim::sec(300));

  [[nodiscard]] gateway::EncoderGateway& encoder_gw() { return *encoder_gw_; }
  [[nodiscard]] sim::Link& forward_link() { return *forward_link_; }
  [[nodiscard]] std::size_t fetches() const { return fetches_; }

 private:
  struct Exchange;

  sim::Simulator& sim_;
  gateway::PipelineConfig config_;
  HttpServer server_;
  std::unique_ptr<gateway::EncoderGateway> encoder_gw_;
  std::unique_ptr<gateway::DecoderGateway> decoder_gw_;
  std::unique_ptr<sim::Link> forward_link_;   // server -> client (lossy)
  std::unique_ptr<sim::Link> reverse_link_;   // client -> server
  std::unique_ptr<Exchange> current_;
  std::size_t fetches_ = 0;
};

}  // namespace bytecache::app
