#include "app/file_transfer.h"

#include <algorithm>

namespace bytecache::app {

FileTransfer::FileTransfer(sim::Simulator& sim, tcp::TcpSender& sender,
                           tcp::TcpReceiver& receiver, util::Bytes file,
                           sim::SimTime request_delay, sim::SimTime give_up)
    : sim_(sim),
      sender_(sender),
      receiver_(receiver),
      file_(std::move(file)),
      request_delay_(request_delay),
      give_up_(give_up) {}

FileTransfer::FileTransfer(sim::Simulator& sim, gateway::Pipeline& pipeline,
                           util::Bytes file, sim::SimTime give_up)
    : FileTransfer(sim, pipeline.sender(), pipeline.receiver(),
                   std::move(file),
                   pipeline.config().reverse_link.propagation_delay,
                   give_up) {}

void FileTransfer::start() {
  started_ = true;
  start_time_ = sim_.now();
  result_.file_size = file_.size();

  receiver_.set_on_progress([this](std::uint64_t delivered) {
    if (!done_ && delivered >= file_.size()) finalize(/*completed=*/true);
  });
  sender_.set_on_abort([this](std::uint64_t) {
    if (!done_) finalize(/*completed=*/false);
  });
  sim_.after(give_up_, [this]() {
    if (!done_) finalize(/*completed=*/false);
  });

  // The client's request costs half an RTT before the server starts.
  sim_.after(request_delay_, [this]() { sender_.start(file_); });
}

void FileTransfer::finalize(bool completed) {
  done_ = true;
  finish_time_ = sim_.now();
  result_.completed = completed;
  result_.stalled = !completed;
  result_.duration_s = sim::to_seconds(finish_time_ - start_time_);
  const auto& stream = receiver_.stream();
  result_.delivered_bytes = stream.size();
  const std::size_t n = std::min(stream.size(), file_.size());
  result_.verified =
      stream.size() <= file_.size() &&
      std::equal(stream.begin(), stream.begin() + n, file_.begin());
}

void FileTransfer::run_to_completion() {
  if (!started_) start();
  while (!done_ && sim_.step()) {
  }
}

}  // namespace bytecache::app
