// UDP streaming source/sink.
//
// The paper notes that the k-distance scheme "is applicable to not only
// TCP but also UDP traffic" (Section V) because it needs no TCP sequence
// numbers.  This pair models a constant-bitrate media stream: the source
// sends numbered datagrams at a fixed interval, the sink counts delivered
// and lost datagrams (there is no retransmission — what is lost stays
// lost, so the perceived loss rate is the user-facing quality metric).
#pragma once

#include <cstdint>
#include <functional>

#include "packet/packet.h"
#include "sim/simulator.h"
#include "util/bytes.h"

namespace bytecache::app {

struct UdpStreamConfig {
  std::uint32_t src_ip = 0x0A000001;
  std::uint32_t dst_ip = 0x0A000101;
  std::uint16_t src_port = 5004;
  std::uint16_t dst_port = 5006;
  std::size_t datagram_payload = 1200;  // app bytes per datagram
  sim::SimTime interval = sim::ms(5);   // send period
};

class UdpSource {
 public:
  using SendFn = std::function<void(packet::PacketPtr)>;

  UdpSource(sim::Simulator& sim, const UdpStreamConfig& config, SendFn send);

  /// Streams `data` as numbered datagrams; calls `on_done` after the last.
  void start(util::Bytes data, std::function<void()> on_done = {});

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }

 private:
  void send_next();

  sim::Simulator& sim_;
  UdpStreamConfig config_;
  SendFn send_;
  std::function<void()> on_done_;
  util::Bytes data_;
  std::size_t offset_ = 0;
  std::uint32_t seqno_ = 0;
  std::uint64_t sent_ = 0;
};

class UdpSink {
 public:
  explicit UdpSink(const UdpStreamConfig& config) : config_(config) {}

  void on_packet(const packet::Packet& pkt);

  [[nodiscard]] std::uint64_t datagrams_received() const { return received_; }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_; }
  [[nodiscard]] std::uint64_t checksum_drops() const { return checksum_drops_; }
  [[nodiscard]] std::uint32_t highest_seqno() const { return highest_seqno_; }

  /// Datagram loss as experienced by the application.
  [[nodiscard]] double loss_rate() const {
    const std::uint64_t expected = highest_seqno_ + 1;
    return expected == 0
               ? 0.0
               : 1.0 - static_cast<double>(received_) / expected;
  }

 private:
  UdpStreamConfig config_;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t checksum_drops_ = 0;
  std::uint32_t highest_seqno_ = 0;
};

}  // namespace bytecache::app
