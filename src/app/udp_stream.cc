#include "app/udp_stream.h"

#include <algorithm>

#include "packet/udp.h"

namespace bytecache::app {

UdpSource::UdpSource(sim::Simulator& sim, const UdpStreamConfig& config,
                     SendFn send)
    : sim_(sim), config_(config), send_(std::move(send)) {}

void UdpSource::start(util::Bytes data, std::function<void()> on_done) {
  data_ = std::move(data);
  on_done_ = std::move(on_done);
  offset_ = 0;
  seqno_ = 0;
  send_next();
}

void UdpSource::send_next() {
  if (offset_ >= data_.size()) {
    if (on_done_) on_done_();
    return;
  }
  const std::size_t len =
      std::min(config_.datagram_payload, data_.size() - offset_);

  // App header: 4-byte sequence number, then the media bytes.
  util::Bytes app;
  app.reserve(4 + len);
  util::put_u32(app, seqno_);
  app.insert(app.end(), data_.begin() + offset_, data_.begin() + offset_ + len);

  packet::UdpHeader h;
  h.src_port = config_.src_port;
  h.dst_port = config_.dst_port;
  util::Bytes datagram;
  datagram.reserve(packet::UdpHeader::kSize + app.size());
  h.serialize(datagram, app, config_.src_ip, config_.dst_ip);

  send_(packet::make_packet(config_.src_ip, config_.dst_ip,
                            packet::IpProto::kUdp, std::move(datagram)));
  ++sent_;
  ++seqno_;
  offset_ += len;
  sim_.after(config_.interval, [this]() { send_next(); });
}

void UdpSink::on_packet(const packet::Packet& pkt) {
  auto h = packet::UdpHeader::parse(pkt.payload, pkt.ip.src, pkt.ip.dst);
  if (!h) {
    ++checksum_drops_;
    return;
  }
  const util::BytesView app(pkt.payload.data() + packet::UdpHeader::kSize,
                            pkt.payload.size() - packet::UdpHeader::kSize);
  if (app.size() < 4) return;
  std::size_t off = 0;
  const std::uint32_t seqno = util::get_u32(app, off);
  ++received_;
  bytes_ += app.size() - 4;
  highest_seqno_ = std::max(highest_seqno_, seqno);
}

}  // namespace bytecache::app
