#include "app/http_session.h"

#include "core/control.h"
#include "packet/tcp.h"

namespace bytecache::app {

/// One request/response pair: two unidirectional TCP halves of the same
/// logical connection.  Packets are demultiplexed by whether they carry
/// data (segments of the half flowing toward the receiver) or are pure
/// ACKs (feedback for the half's sender).
struct HttpSession::Exchange {
  tcp::TcpSender request_tx;     // client -> server (request bytes)
  tcp::TcpReceiver request_rx;   // at the server
  tcp::TcpSender response_tx;    // server -> client (response bytes)
  tcp::TcpReceiver response_rx;  // at the client
  bool response_started = false;
  bool done = false;
  bool stalled = false;
  sim::SimTime started_at = 0;
  sim::SimTime finished_at = 0;
  HttpSession* session;

  Exchange(sim::Simulator& sim, const tcp::TcpConfig& req_cfg,
           const tcp::TcpConfig& resp_cfg, HttpSession* owner)
      : request_tx(sim, req_cfg,
                   [owner](packet::PacketPtr p) {
                     owner->reverse_link_->send(std::move(p));
                   }),
        request_rx(sim, req_cfg,
                   [owner](packet::PacketPtr p) {
                     // Server's ACKs travel server->client: through the
                     // encoder path like all server-originated packets.
                     owner->encoder_gw_->receive(std::move(p));
                   }),
        response_tx(sim, resp_cfg,
                    [owner](packet::PacketPtr p) {
                      owner->encoder_gw_->receive(std::move(p));
                    }),
        response_rx(sim, resp_cfg,
                    [owner](packet::PacketPtr p) {
                      owner->reverse_link_->send(std::move(p));
                    }),
        session(owner) {}
};

HttpSession::HttpSession(sim::Simulator& sim,
                         const gateway::PipelineConfig& config,
                         HttpServer server)
    : sim_(sim), config_(config), server_(std::move(server)) {
  gateway::PipelineConfig& cfg = config_;
  if (cfg.tcp.src_ip == 0) cfg.tcp.src_ip = packet::make_ip(10, 0, 0, 1);
  if (cfg.tcp.dst_ip == 0) cfg.tcp.dst_ip = packet::make_ip(10, 0, 1, 1);

  util::Rng root(cfg.seed);
  const core::GatewayConfig gw_cfg = cfg.gateway_config();
  encoder_gw_ = std::make_unique<gateway::EncoderGateway>(gw_cfg);
  decoder_gw_ = std::make_unique<gateway::DecoderGateway>(gw_cfg);
  forward_link_ = std::make_unique<sim::Link>(
      sim, cfg.forward_link,
      cfg.loss_rate > 0
          ? std::unique_ptr<sim::LossProcess>(
                std::make_unique<sim::BernoulliLoss>(cfg.loss_rate))
          : std::make_unique<sim::NoLoss>(),
      root.fork(1));
  reverse_link_ = std::make_unique<sim::Link>(
      sim, cfg.reverse_link, std::make_unique<sim::NoLoss>(), root.fork(2));

  encoder_gw_->set_sink(
      [this](packet::PacketPtr p) { forward_link_->send(std::move(p)); });
  forward_link_->set_sink(
      [this](packet::PacketPtr p) { decoder_gw_->receive(std::move(p)); });

  // Client side: data segments belong to the response; pure ACKs feed the
  // request sender.
  decoder_gw_->set_sink([this](packet::PacketPtr p) {
    if (current_ == nullptr) return;
    if (p->payload.size() > packet::TcpHeader::kSize) {
      current_->response_rx.on_packet(*p);
    } else {
      current_->request_tx.on_packet(*p);
    }
  });
  if (cfg.dre.nack_feedback) {
    decoder_gw_->set_feedback(
        [this](packet::PacketPtr p) { reverse_link_->send(std::move(p)); });
  }

  // Server side: data segments are the request; pure ACKs feed the
  // response sender.
  reverse_link_->set_sink([this](packet::PacketPtr p) {
    if (p->ip.protocol == core::kControlProto) {
      encoder_gw_->receive_control(*p);
      return;
    }
    encoder_gw_->observe_reverse(*p);
    if (current_ == nullptr) return;
    if (p->payload.size() > packet::TcpHeader::kSize) {
      current_->request_rx.on_packet(*p);
    } else {
      current_->response_tx.on_packet(*p);
    }
  });
}

HttpSession::~HttpSession() = default;

FetchResult HttpSession::fetch(const std::string& path,
                               sim::SimTime deadline) {
  const std::uint16_t client_port =
      static_cast<std::uint16_t>(40000 + fetches_);
  tcp::TcpConfig req_cfg = config_.tcp;
  req_cfg.src_ip = config_.tcp.dst_ip;  // client originates
  req_cfg.dst_ip = config_.tcp.src_ip;
  req_cfg.src_port = client_port;
  req_cfg.dst_port = 80;
  req_cfg.isn = 50'000 + static_cast<std::uint32_t>(fetches_) * 0x10000;
  tcp::TcpConfig resp_cfg = config_.tcp;
  resp_cfg.src_port = 80;
  resp_cfg.dst_port = client_port;
  resp_cfg.isn = 90'000 + static_cast<std::uint32_t>(fetches_) * 0x20000;
  ++fetches_;

  current_ = std::make_unique<Exchange>(sim_, req_cfg, resp_cfg, this);
  Exchange& ex = *current_;
  ex.started_at = sim_.now();

  // Server: once the request fully arrives, serve the response.
  ex.request_rx.set_on_progress([this, &ex](std::uint64_t) {
    if (ex.response_started) return;
    auto req = HttpRequest::parse(ex.request_rx.stream());
    if (!req) return;
    ex.response_started = true;
    ex.response_tx.start(server_.handle(*req).serialize());
  });

  // Client: done when the response is complete.
  ex.response_rx.set_on_progress([this, &ex](std::uint64_t) {
    auto missing = HttpResponse::bytes_missing(ex.response_rx.stream());
    if (missing && *missing == 0 && !ex.done) {
      ex.done = true;
      ex.finished_at = sim_.now();
    }
  });
  auto abort_handler = [&ex](std::uint64_t) { ex.stalled = true; };
  ex.request_tx.set_on_abort(abort_handler);
  ex.response_tx.set_on_abort(abort_handler);

  HttpRequest req;
  req.path = path;
  req.headers = {{"Host", "server.example"},
                 {"User-Agent", "bytecache-sim/1.0"},
                 {"Accept", "*/*"}};
  ex.request_tx.start(req.serialize());

  const sim::SimTime give_up = sim_.now() + deadline;
  while (!ex.done && !ex.stalled && sim_.now() < give_up && sim_.step()) {
  }

  FetchResult result;
  result.stalled = ex.stalled || (!ex.done && sim_.now() >= give_up);
  if (ex.done) {
    auto resp = HttpResponse::parse(ex.response_rx.stream());
    if (resp) {
      result.ok = true;
      result.status = resp->status;
      result.response = std::move(*resp);
      result.duration_s = sim::to_seconds(ex.finished_at - ex.started_at);
    }
  }
  current_.reset();
  return result;
}

}  // namespace bytecache::app
