#include "app/http.h"

#include <algorithm>
#include <cctype>

namespace bytecache::app {
namespace {

constexpr std::string_view kCrlf = "\r\n";

/// Finds the end of the header section; npos if incomplete.
std::size_t header_end(std::string_view text) {
  const std::size_t pos = text.find("\r\n\r\n");
  return pos == std::string_view::npos ? std::string_view::npos : pos + 4;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Splits the header block (after the start line) into name/value pairs.
std::vector<std::pair<std::string, std::string>> parse_headers(
    std::string_view block) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < block.size()) {
    const std::size_t eol = block.find(kCrlf, pos);
    if (eol == std::string_view::npos || eol == pos) break;
    const std::string_view line = block.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      out.emplace_back(std::string(line.substr(0, colon)),
                       std::string(value));
    }
    pos = eol + 2;
  }
  return out;
}

}  // namespace

util::Bytes HttpRequest::serialize() const {
  std::string out = method + " " + path + " HTTP/1.0\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  return util::to_bytes(out);
}

std::optional<HttpRequest> HttpRequest::parse(util::BytesView wire) {
  const std::string_view text(reinterpret_cast<const char*>(wire.data()),
                              wire.size());
  const std::size_t end = header_end(text);
  if (end == std::string_view::npos) return std::nullopt;

  const std::size_t line_end = text.find(kCrlf);
  const std::string_view line = text.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return std::nullopt;
  if (line.substr(sp2 + 1).substr(0, 5) != "HTTP/") return std::nullopt;

  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.path = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.headers = parse_headers(text.substr(line_end + 2, end - line_end - 2));
  return req;
}

util::Bytes HttpResponse::serialize() const {
  std::string head = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                     "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : headers) {
    head += name + ": " + value + "\r\n";
    if (iequals(name, "Content-Length")) has_length = true;
  }
  if (!has_length) {
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  head += "\r\n";
  util::Bytes out = util::to_bytes(head);
  util::append(out, body);
  return out;
}

std::string HttpResponse::header(const std::string& name) const {
  for (const auto& [n, v] : headers) {
    if (iequals(n, name)) return v;
  }
  return "";
}

std::optional<std::size_t> HttpResponse::bytes_missing(util::BytesView wire) {
  const std::string_view text(reinterpret_cast<const char*>(wire.data()),
                              wire.size());
  const std::size_t end = header_end(text);
  if (end == std::string_view::npos) return std::nullopt;
  std::size_t content_length = 0;
  for (const auto& [name, value] :
       parse_headers(text.substr(text.find(kCrlf) + 2))) {
    if (iequals(name, "Content-Length")) {
      content_length = static_cast<std::size_t>(std::stoull(value));
    }
  }
  const std::size_t total = end + content_length;
  return wire.size() >= total ? 0 : total - wire.size();
}

std::optional<HttpResponse> HttpResponse::parse(util::BytesView wire) {
  const std::string_view text(reinterpret_cast<const char*>(wire.data()),
                              wire.size());
  const std::size_t end = header_end(text);
  if (end == std::string_view::npos) return std::nullopt;

  const std::size_t line_end = text.find(kCrlf);
  const std::string_view line = text.substr(0, line_end);
  if (line.substr(0, 5) != "HTTP/") return std::nullopt;
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = line.find(' ', sp1 + 1);

  HttpResponse resp;
  resp.status = std::atoi(std::string(line.substr(sp1 + 1)).c_str());
  resp.reason = sp2 == std::string_view::npos
                    ? ""
                    : std::string(line.substr(sp2 + 1));
  resp.headers = parse_headers(text.substr(line_end + 2, end - line_end - 2));

  std::size_t content_length = 0;
  bool has_length = false;
  for (const auto& [name, value] : resp.headers) {
    if (iequals(name, "Content-Length")) {
      content_length = static_cast<std::size_t>(std::stoull(value));
      has_length = true;
    }
  }
  if (!has_length || wire.size() < end + content_length) return std::nullopt;
  resp.body.assign(wire.begin() + end, wire.begin() + end + content_length);
  return resp;
}

void HttpServer::add_object(const std::string& path, util::Bytes body,
                            const std::string& content_type) {
  objects_[path] = Object{std::move(body), content_type};
}

HttpResponse HttpServer::handle(const HttpRequest& request) const {
  HttpResponse resp;
  resp.headers = {{"Server", "bytecache-sim/1.0"},
                  {"Connection", "close"},
                  {"Cache-Control", "no-cache"}};
  auto it = objects_.find(request.path);
  if (request.method != "GET") {
    resp.status = 405;
    resp.reason = "Method Not Allowed";
    resp.body = util::to_bytes("method not allowed\n");
  } else if (it == objects_.end()) {
    resp.status = 404;
    resp.reason = "Not Found";
    resp.body = util::to_bytes("object not found\n");
  } else {
    resp.headers.emplace_back("Content-Type", it->second.content_type);
    resp.body = it->second.body;
  }
  return resp;
}

}  // namespace bytecache::app
