// Minimal HTTP/1.0 messages and an in-simulation HTTP exchange.
//
// The paper's experiment unit is "a client retrieves a file from a HTTP
// server" through byte-caching gateways.  This module provides the
// realistic version of that: a textual HTTP request travels client ->
// server on the reverse path, the response (status line + headers + body)
// travels back through the encoder/lossy link/decoder, and the repeated
// header boilerplate across responses is itself subject to redundancy
// elimination — as it is for real deployments.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace bytecache::app {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::vector<std::pair<std::string, std::string>> headers;

  [[nodiscard]] util::Bytes serialize() const;

  /// Parses a complete request (through the blank line); nullopt if the
  /// request is incomplete or malformed.
  static std::optional<HttpRequest> parse(util::BytesView wire);
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  util::Bytes body;

  [[nodiscard]] util::Bytes serialize() const;

  /// Parses a complete response; requires Content-Length and the full
  /// body to be present; nullopt otherwise.
  static std::optional<HttpResponse> parse(util::BytesView wire);

  /// Bytes still missing for a complete response, or nullopt if even the
  /// header section is incomplete (callers keep reading either way).
  static std::optional<std::size_t> bytes_missing(util::BytesView wire);

  [[nodiscard]] std::string header(const std::string& name) const;
};

/// A tiny origin server: a path -> object map.
class HttpServer {
 public:
  void add_object(const std::string& path, util::Bytes body,
                  const std::string& content_type = "text/html");

  /// Builds the response for a parsed request (404 for unknown paths).
  [[nodiscard]] HttpResponse handle(const HttpRequest& request) const;

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

 private:
  struct Object {
    util::Bytes body;
    std::string content_type;
  };
  std::map<std::string, Object> objects_;
};

}  // namespace bytecache::app
