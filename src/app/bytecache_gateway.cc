// bytecache_gateway — the DRE codec as a real middlebox process
// (DESIGN.md §12).  One process is one side of the tunnel:
//
//   encoder side (near the server):
//     $ bytecache_gateway --role=encode --ingress=127.0.0.1:9000
//           --tunnel=127.0.0.1:9001 --peer=127.0.0.1:9002
//           --control=127.0.0.1:9003 --policy=cache_flush
//   decoder side (client side of the constrained segment):
//     $ bytecache_gateway --role=decode --tunnel=127.0.0.1:9002
//           --egress=127.0.0.1:9100 --control=127.0.0.1:9004
//
// Plain UDP datagrams arriving on the encoder's --ingress socket are
// framed onto per-source virtual flows, DRE-encoded, and tunneled to
// the peer; the decoder reconstructs them and forwards the original
// bytes to --egress.  Reverse tunnel datagrams carry the decoder's
// control feedback (NACK / resync, core/control.h).
//
// `--backend=sim` runs BOTH tunnels in one process over a modeled
// sim::Link wire instead of a peer socket — the second backend behind
// the transport seam.  Same tunnels, same framing: the encoder stats it
// reports are byte-comparable with a two-process UDP run, which is what
// the loopback smoke test (tools/loopback_smoke.py) asserts.
//
// Flags:
//   --role=encode|decode      which side (udp backend; sim runs both)
//   --backend=udp|sim         transport backend          (default udp)
//   --ingress=a.b.c.d:port    plain-side bind (encode/sim)
//   --egress=a.b.c.d:port     plain-side destination (decode/sim)
//   --tunnel=a.b.c.d:port     tunnel socket bind (udp backend)
//   --peer=a.b.c.d:port       peer tunnel address (required for encode;
//                             decode learns it from the first datagram)
//   --control=a.b.c.d:port    runtime control channel (net/control.h)
//   --policy=<name>           encoding policy            (default cache_flush)
//   --cache-bytes=<n>         L1 cache budget, 0 = unbounded (default 0)
//   --l2-bytes=<n>            shared L2 tier budget, 0 = no L2 (default 0)
//   --host-pair-bytes=<n>     per-host-pair L2 budget, 0 = none (default 0)
//   --nack                    decoder NACK feedback
//   --epoch-resync            epoch-stamped resync (v2 wire format)
//   --stats-exit              dump the JSONL snapshot to stdout on exit
//
// SIGINT/SIGTERM stop the event loop; teardown is clean (RAII all the
// way down — the PR 1 use-after-free timers are why that is a feature).
#include <sys/epoll.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>

#include "core/factory.h"
#include "net/control.h"
#include "net/event_loop.h"
#include "net/gateway_tunnel.h"
#include "net/sim_transport.h"
#include "net/udp_socket.h"
#include "net/udp_transport.h"
#include "obs/export.h"
#include "sim/simulator.h"

using namespace bytecache;

namespace {

struct Options {
  std::string role;  // "encode" | "decode" | "" (sim backend runs both)
  std::string backend = "udp";
  std::optional<net::SocketAddr> ingress;
  std::optional<net::SocketAddr> egress;
  std::optional<net::SocketAddr> tunnel;
  net::SocketAddr peer;  // invalid = learn from first datagram
  std::optional<net::SocketAddr> control;
  std::string policy = "cache_flush";
  std::size_t cache_bytes = 0;
  std::size_t l2_bytes = 0;
  std::size_t host_pair_bytes = 0;
  bool nack = false;
  bool epoch_resync = false;
  bool stats_exit = false;
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "bytecache_gateway: %s (see header comment)\n",
               msg.c_str());
  std::exit(2);
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    out = arg + len + 1;
    return true;
  }
  return false;
}

net::SocketAddr parse_addr(const std::string& text, const char* flag) {
  auto addr = net::SocketAddr::parse(text);
  if (!addr) die(std::string(flag) + ": malformed address '" + text + "'");
  return *addr;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (parse_flag(a, "--role", v)) opt.role = v;
    else if (parse_flag(a, "--backend", v)) opt.backend = v;
    else if (parse_flag(a, "--ingress", v)) opt.ingress = parse_addr(v, a);
    else if (parse_flag(a, "--egress", v)) opt.egress = parse_addr(v, a);
    else if (parse_flag(a, "--tunnel", v)) opt.tunnel = parse_addr(v, a);
    else if (parse_flag(a, "--peer", v)) opt.peer = parse_addr(v, a);
    else if (parse_flag(a, "--control", v)) opt.control = parse_addr(v, a);
    else if (parse_flag(a, "--policy", v)) opt.policy = v;
    else if (parse_flag(a, "--cache-bytes", v))
      opt.cache_bytes = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(a, "--l2-bytes", v))
      opt.l2_bytes = std::strtoull(v.c_str(), nullptr, 10);
    else if (parse_flag(a, "--host-pair-bytes", v))
      opt.host_pair_bytes = std::strtoull(v.c_str(), nullptr, 10);
    else if (std::strcmp(a, "--nack") == 0) opt.nack = true;
    else if (std::strcmp(a, "--epoch-resync") == 0) opt.epoch_resync = true;
    else if (std::strcmp(a, "--stats-exit") == 0) opt.stats_exit = true;
    else die(std::string("unknown argument '") + a + "'");
  }
  if (opt.backend != "udp" && opt.backend != "sim")
    die("--backend must be udp or sim");
  if (opt.backend == "udp") {
    if (opt.role != "encode" && opt.role != "decode")
      die("--role=encode|decode is required with --backend=udp");
    if (!opt.tunnel) die("--tunnel is required with --backend=udp");
    if (opt.role == "encode" && !opt.peer.valid())
      die("--peer is required for the encoder side");
    if (opt.role == "encode" && !opt.ingress)
      die("--ingress is required for the encoder side");
    if (opt.role == "decode" && !opt.egress)
      die("--egress is required for the decoder side");
  } else {
    if (!opt.ingress || !opt.egress)
      die("--backend=sim needs both --ingress and --egress");
  }
  return opt;
}

net::TunnelConfig tunnel_config(const Options& opt) {
  net::TunnelConfig tc;
  const auto kind = core::policy_from_string(opt.policy);
  if (!kind) die("unknown policy '" + opt.policy + "'");
  tc.gateway.policy = *kind;
  tc.gateway.cache.l1_bytes = opt.cache_bytes;
  tc.gateway.cache.l2_bytes = opt.l2_bytes;
  tc.gateway.cache.per_host_pair_bytes = opt.host_pair_bytes;
  tc.gateway.params.nack_feedback = opt.nack;
  tc.gateway.params.epoch_resync = opt.epoch_resync;
  return tc;
}

net::EventLoop* g_loop = nullptr;

void on_signal(int /*sig*/) {
  if (g_loop != nullptr) g_loop->stop();  // one eventfd write: signal-safe
}

/// Binds the plain-side ingress socket and feeds every datagram (keyed
/// by its source address) into the encoder tunnel.  `after_drain` runs
/// once per readiness batch — the sim backend's hook for flushing the
/// modeled wire.
void add_ingress(net::EventLoop& loop, net::UdpSocket& socket,
                 const net::SocketAddr& addr, net::EncoderTunnel& enc,
                 std::function<void()> after_drain) {
  if (!socket.bind(addr))
    die("cannot bind --ingress " + addr.to_string() + ": " +
        std::strerror(errno));
  loop.add_fd(socket.fd(), EPOLLIN,
              [&socket, &enc, after_drain](std::uint32_t) {
                socket.drain([&enc](util::BytesView data,
                                    const net::SocketAddr& from) {
                  enc.on_plain_datagram(data, from.key());
                });
                if (after_drain) after_drain();
              });
}

int run_udp(const Options& opt) {
  net::EventLoop loop;
  g_loop = &loop;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  net::UdpTunnelTransport tunnel(loop, *opt.tunnel, opt.peer);
  const net::TunnelConfig tc = tunnel_config(opt);

  std::optional<net::EncoderTunnel> enc;
  std::optional<net::DecoderTunnel> dec;
  net::UdpSocket ingress;
  net::UdpSocket egress;

  net::ControlHandlers handlers;
  if (opt.role == "encode") {
    enc.emplace(tc, tunnel);
    add_ingress(loop, ingress, *opt.ingress, *enc, nullptr);
    handlers.stats_jsonl = [&] { return obs::to_jsonl(enc->snapshot()); };
    handlers.flush_cache = [&] { return enc->flush_cache(); };
    handlers.switch_policy = [&](std::string_view name) {
      return enc->switch_policy(name);
    };
  } else {
    if (!egress.bind(net::SocketAddr{}))  // ephemeral plain-side source
      die(std::string("cannot bind egress socket: ") + std::strerror(errno));
    const net::SocketAddr to = *opt.egress;
    dec.emplace(tc, tunnel, [&egress, to](util::BytesView data) {
      (void)egress.send_to(to, data);  // kernel drop = plain-side loss
    });
    handlers.stats_jsonl = [&] { return obs::to_jsonl(dec->snapshot()); };
    handlers.flush_cache = [&] { return dec->flush_cache(); };
    // switch_policy stays unset: the decoder has no policy — the control
    // server answers the command with an error response.
  }
  handlers.shutdown = [&loop] { loop.stop(); };

  std::optional<net::ControlServer> control;
  if (opt.control) control.emplace(loop, *opt.control, handlers);

  std::fprintf(stderr, "bytecache_gateway: role=%s tunnel=%s control=%s\n",
               opt.role.c_str(), tunnel.local_addr().to_string().c_str(),
               control ? control->local_addr().to_string().c_str() : "-");
  loop.run();
  g_loop = nullptr;

  if (opt.stats_exit) {
    const std::string jsonl = enc ? obs::to_jsonl(enc->snapshot())
                                  : obs::to_jsonl(dec->snapshot());
    std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
  }
  return 0;
}

int run_sim(const Options& opt) {
  net::EventLoop loop;
  g_loop = &loop;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  sim::Simulator sim;
  net::SimTransportPair pair(sim, net::SimTransportConfig{});
  const net::TunnelConfig tc = tunnel_config(opt);

  net::EncoderTunnel enc(tc, pair.end_a());
  net::UdpSocket egress;
  if (!egress.bind(net::SocketAddr{}))
    die(std::string("cannot bind egress socket: ") + std::strerror(errno));
  const net::SocketAddr to = *opt.egress;
  net::DecoderTunnel dec(tc, pair.end_b(), [&egress, to](util::BytesView d) {
    (void)egress.send_to(to, d);
  });

  // The modeled wire only moves when the simulator runs: flush it after
  // every ingress batch, so encode -> link -> decode -> feedback -> ...
  // all settle before the loop sleeps again.
  net::UdpSocket ingress;
  add_ingress(loop, ingress, *opt.ingress, enc, [&sim] { sim.run(); });

  net::ControlHandlers handlers;
  handlers.stats_jsonl = [&] { return obs::to_jsonl(enc.snapshot()); };
  handlers.flush_cache = [&] { return enc.flush_cache(); };
  handlers.switch_policy = [&](std::string_view name) {
    return enc.switch_policy(name);
  };
  handlers.shutdown = [&loop] { loop.stop(); };
  std::optional<net::ControlServer> control;
  if (opt.control) control.emplace(loop, *opt.control, handlers);

  std::fprintf(stderr, "bytecache_gateway: backend=sim control=%s\n",
               control ? control->local_addr().to_string().c_str() : "-");
  loop.run();
  sim.run();  // drain anything in flight on the modeled wire
  g_loop = nullptr;

  if (opt.stats_exit) {
    const std::string jsonl = obs::to_jsonl(enc.snapshot());
    std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  return opt.backend == "sim" ? run_sim(opt) : run_udp(opt);
}
