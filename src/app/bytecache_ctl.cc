// bytecache_ctl — command-line client of the gateway control channel
// (net/control.h; DESIGN.md §12.3).
//
//   $ bytecache_ctl --server=127.0.0.1:9003 ping
//   $ bytecache_ctl --server=127.0.0.1:9003 stats > snapshot.jsonl
//   $ bytecache_ctl --server=127.0.0.1:9003 flush
//   $ bytecache_ctl --server=127.0.0.1:9003 policy k_distance
//   $ bytecache_ctl --server=127.0.0.1:9003 shutdown
//
// One request datagram, one response datagram.  The request is retried
// (UDP) up to 3 times with a 1-second wait each; the response payload
// goes to stdout.  Exit status: 0 ok, 1 the gateway answered with an
// error, 3 no response.
#include <sys/epoll.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "net/control.h"
#include "net/event_loop.h"
#include "net/udp_socket.h"

using namespace bytecache;

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "bytecache_ctl: %s (see header comment)\n",
               msg.c_str());
  std::exit(2);
}

struct Command {
  net::ControlCommand command;
  util::Bytes payload;
};

Command parse_command(int argc, char** argv, int i) {
  if (i >= argc) die("missing command");
  const std::string name = argv[i];
  if (name == "ping") return {net::ControlCommand::kPing, {}};
  if (name == "stats") return {net::ControlCommand::kStats, {}};
  if (name == "flush") return {net::ControlCommand::kFlushCache, {}};
  if (name == "shutdown") return {net::ControlCommand::kShutdown, {}};
  if (name == "policy") {
    if (i + 1 >= argc) die("policy: missing policy name");
    const char* policy = argv[i + 1];
    return {net::ControlCommand::kSwitchPolicy,
            util::Bytes(policy, policy + std::strlen(policy))};
  }
  die("unknown command '" + name + "'");
}

constexpr int kAttempts = 3;
constexpr int kWaitMs = 1000;

}  // namespace

int main(int argc, char** argv) {
  std::optional<net::SocketAddr> server;
  int cmd_index = argc;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--server=", 9) == 0) {
      server = net::SocketAddr::parse(a + 9);
      if (!server) die(std::string("malformed --server address '") + a + "'");
    } else {
      cmd_index = i;
      break;
    }
  }
  if (!server) die("--server=a.b.c.d:port is required");
  const Command cmd = parse_command(argc, argv, cmd_index);

  net::EventLoop loop;
  net::UdpSocket socket;
  if (!socket.bind(net::SocketAddr{}))
    die(std::string("cannot bind: ") + std::strerror(errno));

  net::ControlRequest req;
  req.command = cmd.command;
  req.payload = cmd.payload;
  const util::Bytes wire = req.serialize();

  std::optional<net::ControlResponse> response;
  loop.add_fd(socket.fd(), EPOLLIN, [&](std::uint32_t) {
    socket.drain([&](util::BytesView datagram, const net::SocketAddr&) {
      if (response) return;  // first well-formed response wins
      if (auto parsed = net::ControlResponse::parse(datagram))
        response = std::move(*parsed);
    });
  });

  for (int attempt = 0; attempt < kAttempts && !response; ++attempt) {
    if (!socket.send_to(*server, wire))
      die(std::string("send failed: ") + std::strerror(errno));
    loop.run_once(kWaitMs);
  }
  if (!response) {
    std::fprintf(stderr, "bytecache_ctl: no response from %s after %d tries\n",
                 server->to_string().c_str(), kAttempts);
    return 3;
  }
  std::fwrite(response->payload.data(), 1, response->payload.size(), stdout);
  if (!response->payload.empty() && response->payload.back() != '\n')
    std::fputc('\n', stdout);
  if (!response->ok) {
    std::fprintf(stderr, "bytecache_ctl: command refused\n");
    return 1;
  }
  return 0;
}
