// One HTTP-like file retrieval (the paper's experiment unit: "a client
// retrieves a file from a HTTP server").
//
// Drives a TCP sender/receiver pair, measures the download time as seen
// by the client (request to last in-order byte), detects stalls (sender
// abort after max backoffs, or a wall-clock give-up), and verifies the
// delivered stream bit-for-bit.  Works with the single-connection
// gateway::Pipeline or any sender/receiver of a MultiPipeline flow.
#pragma once

#include <functional>

#include "gateway/pipeline.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "util/bytes.h"

namespace bytecache::app {

struct TransferResult {
  bool completed = false;
  bool stalled = false;  // aborted by backoff limit or give-up timer
  double duration_s = 0.0;
  std::uint64_t file_size = 0;
  std::uint64_t delivered_bytes = 0;
  bool verified = false;  // delivered bytes equal the file prefix

  [[nodiscard]] double percent_retrieved() const {
    return file_size == 0
               ? 0.0
               : 100.0 * static_cast<double>(delivered_bytes) / file_size;
  }
};

class FileTransfer {
 public:
  /// Generic form: drives `sender`/`receiver` directly.  `request_delay`
  /// models the client's request reaching the server (half an RTT);
  /// `give_up` caps the transfer duration (safety net on top of the
  /// sender's backoff-limit abort).
  FileTransfer(sim::Simulator& sim, tcp::TcpSender& sender,
               tcp::TcpReceiver& receiver, util::Bytes file,
               sim::SimTime request_delay, sim::SimTime give_up);

  /// Convenience form over a single-connection pipeline.
  FileTransfer(sim::Simulator& sim, gateway::Pipeline& pipeline,
               util::Bytes file, sim::SimTime give_up = sim::sec(600));

  /// Starts the transfer at the current simulated time.
  void start();

  /// True once completed or stalled.
  [[nodiscard]] bool done() const { return done_; }

  /// Valid after done().
  [[nodiscard]] const TransferResult& result() const { return result_; }

  /// Runs the simulator until this transfer is done (or events run out).
  void run_to_completion();

 private:
  void finalize(bool completed);

  sim::Simulator& sim_;
  tcp::TcpSender& sender_;
  tcp::TcpReceiver& receiver_;
  util::Bytes file_;
  sim::SimTime request_delay_;
  sim::SimTime give_up_;
  sim::SimTime start_time_ = 0;
  sim::SimTime finish_time_ = 0;
  bool started_ = false;
  bool done_ = false;
  TransferResult result_;
};

}  // namespace bytecache::app
