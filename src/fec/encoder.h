// Encoder half of the coded-repair layer (DESIGN.md §13).
//
// Groups the wire images of outgoing v3-tagged packets into generations
// of up to G members.  When a generation closes — full, or early on a
// TCP retransmission / rung change / teardown — R coded repair payloads
// are emitted: GF(256) linear combinations of the member symbols under
// the Cauchy coefficients of fec/gf256.h.  Every buffer is reused
// scratch (one contiguous member arena, fixed emission slots), so the
// steady state allocates nothing (bc-hotpath-alloc).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fec/params.h"
#include "fec/wire.h"
#include "obs/fields.h"
#include "util/bytes.h"

namespace bytecache::fec {

struct RepairEncoderStats {
  std::uint64_t members = 0;          // symbols added to generations
  std::uint64_t generations = 0;      // generations closed
  std::uint64_t early_closes = 0;     // closed before reaching G members
  std::uint64_t repair_payloads = 0;  // repair payloads emitted
  std::uint64_t repair_bytes = 0;     // their total wire bytes
};

/// Telemetry field table (obs/fields.h): drives the generic merge_into /
/// reset / snapshot operations and the registry metric names.
[[nodiscard]] constexpr auto stats_fields(const RepairEncoderStats*) {
  using S = RepairEncoderStats;
  return obs::field_table<S>(
      obs::Field<S>{"members", &S::members},
      obs::Field<S>{"generations", &S::generations},
      obs::Field<S>{"early_closes", &S::early_closes},
      obs::Field<S>{"repair_payloads", &S::repair_payloads},
      obs::Field<S>{"repair_bytes", &S::repair_bytes});
}

using obs::merge_into;
using obs::reset;

class RepairEncoder {
 public:
  explicit RepairEncoder(const RepairConfig& cfg);

  struct Tag {
    std::uint16_t gen_id = 0;
    std::uint8_t gen_seq = 0;
  };

  /// Starts a packet: the previous packet's emitted() span dies here.
  void begin_packet();

  /// Claims the next slot of the open generation (opening one if
  /// needed).  The tag goes into the packet's v3 shim *before* the
  /// finished wire image is recorded with add_member().
  [[nodiscard]] Tag next_tag();

  /// Records the finished wire image (IP header + encoded payload) of
  /// the packet tagged by the preceding next_tag() call; closes the
  /// generation — emitting its repairs — when it reaches G members.
  void add_member(util::BytesView wire_image);

  /// Closes the open generation early (TCP retransmission, rung change,
  /// teardown); no-op when no generation is open.
  void close_generation();

  /// Repair payloads emitted since begin_packet(), oldest first.  The
  /// spanned buffers stay valid until the next begin_packet().
  [[nodiscard]] std::span<const util::Bytes> emitted() const {
    return {emitted_.data(), emitted_count_};
  }

  [[nodiscard]] bool generation_open() const { return member_count_ > 0; }
  [[nodiscard]] const RepairEncoderStats& stats() const { return stats_; }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits).
  void audit() const;

 private:
  void emit_repairs();

  RepairConfig cfg_;
  RepairEncoderStats stats_;
  std::uint16_t gen_id_ = 0;       // id of the open (or next) generation
  std::uint8_t member_count_ = 0;  // members recorded in the open one
  bool tag_pending_ = false;       // next_tag() issued, add_member() due
  std::uint16_t max_len_ = 0;      // longest member wire image so far

  // Member wire images live concatenated in one arena; member i spans
  // [offsets_[i], offsets_[i+1]).
  util::Bytes arena_;
  std::array<std::uint32_t, kMaxGenerationPackets + 1> offsets_{};

  // Fixed emission slots (two closes can happen within one packet: an
  // early close at the retransmission decision plus a full close after
  // the packet itself is added), their capacity reused across closes.
  std::vector<util::Bytes> emitted_;
  std::size_t emitted_count_ = 0;
  RepairPacket scratch_;  // header/coeff/symbol build scratch
};

}  // namespace bytecache::fec
