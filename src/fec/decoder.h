// Decoder half of the coded-repair layer (DESIGN.md §13).
//
// Sits in front of the DRE core decoder, which only stays cache-synced
// when packets reach it in encoder order.  The RepairDecoder therefore
// does two jobs with one structure:
//
//   * reorder cache — arrivals are buffered per generation in a ring of
//     gen_window generation records and released strictly in (gen_id,
//     gen_seq) order from a serial-number release cursor, so plain
//     reordering never arms an EpochSynchronizer resync;
//   * loss repair — each generation record runs an incremental Gaussian
//     elimination: repair rows are reduced by known member symbols on
//     either arrival order, and once the buffered rows cover the missing
//     members the system is solved and the lost packets reconstructed
//     byte-exactly, without a resync round-trip.
//
// Liveness is bounded, never assumed: a generation proven unrecoverable
// (every repair seen, still short of rows) is force-released at once,
// and any cursor generation is force-released after
// blocked_arrival_budget arrivals without release progress — its gaps
// then fall through to ordinary TCP recovery.  Corrupted repairs fail
// their CRC at parse; a corrupted reconstruction degrades to a shim-CRC
// drop in the core decoder (the correctness backstop).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fec/params.h"
#include "fec/wire.h"
#include "obs/fields.h"
#include "packet/packet.h"
#include "util/bytes.h"

namespace bytecache::fec {

struct RepairDecoderStats {
  std::uint64_t data_packets = 0;       // v3-tagged data arrivals
  std::uint64_t repair_packets = 0;     // repairs parsed clean
  std::uint64_t repairs_malformed = 0;  // parse/CRC/consistency failures
  std::uint64_t repairs_redundant = 0;  // duplicate or already-passed
  std::uint64_t released = 0;           // packets released in order
  std::uint64_t resequenced = 0;        // of those: sat in the buffer
  std::uint64_t reconstructed = 0;      // of those: rebuilt from repairs
  std::uint64_t reconstruct_failed = 0; // solved symbol failed sanity
  std::uint64_t late_delivered = 0;     // passed the cursor, let through
  std::uint64_t duplicates = 0;         // suppressed re-arrivals
  std::uint64_t tag_rejects = 0;        // impossible gen_seq, let through
  std::uint64_t generations_completed = 0;
  std::uint64_t generations_abandoned = 0;  // force-released
  std::uint64_t forced_releases = 0;
  std::uint64_t solves = 0;          // successful eliminations
  std::uint64_t solve_deferred = 0;  // rank-deficient, kept waiting
};

[[nodiscard]] constexpr auto stats_fields(const RepairDecoderStats*) {
  using S = RepairDecoderStats;
  return obs::field_table<S>(
      obs::Field<S>{"data_packets", &S::data_packets},
      obs::Field<S>{"repair_packets", &S::repair_packets},
      obs::Field<S>{"repairs_malformed", &S::repairs_malformed},
      obs::Field<S>{"repairs_redundant", &S::repairs_redundant},
      obs::Field<S>{"released", &S::released},
      obs::Field<S>{"resequenced", &S::resequenced},
      obs::Field<S>{"reconstructed", &S::reconstructed},
      obs::Field<S>{"reconstruct_failed", &S::reconstruct_failed},
      obs::Field<S>{"late_delivered", &S::late_delivered},
      obs::Field<S>{"duplicates", &S::duplicates},
      obs::Field<S>{"tag_rejects", &S::tag_rejects},
      obs::Field<S>{"generations_completed", &S::generations_completed},
      obs::Field<S>{"generations_abandoned", &S::generations_abandoned},
      obs::Field<S>{"forced_releases", &S::forced_releases},
      obs::Field<S>{"solves", &S::solves},
      obs::Field<S>{"solve_deferred", &S::solve_deferred});
}

using obs::merge_into;
using obs::reset;

class RepairDecoder {
 public:
  explicit RepairDecoder(const RepairConfig& cfg);

  /// One packet handed downstream; `reconstructed` marks packets rebuilt
  /// from repair rows rather than received natively.
  struct Released {
    packet::PacketPtr pkt;
    bool reconstructed = false;
  };

  /// Feeds a v3-tagged data packet (tag peeked from its shim by the
  /// gateway).  Packets ready for in-order delivery are appended to
  /// `out`.
  void on_data(std::uint16_t gen_id, std::uint8_t gen_seq,
               packet::PacketPtr pkt, std::vector<Released>& out);

  /// Feeds a repair payload (magic 0xD7).  Reconstructions it unlocks
  /// are appended to `out` in order.
  void on_repair(util::BytesView payload, std::vector<Released>& out);

  /// Releases everything still buffered, oldest generation first
  /// (teardown / rung turn-off; gaps stay gaps).
  void drain(std::vector<Released>& out);

  /// Data packets currently held in the reorder cache.
  [[nodiscard]] std::size_t buffered() const { return held_count_; }

  [[nodiscard]] const RepairDecoderStats& stats() const { return stats_; }

  /// Deep invariant audit (BC_AUDIT; no-op unless the build enables
  /// audits).
  void audit() const;

 private:
  struct Row {
    std::array<std::uint8_t, kMaxGenerationPackets> coeff{};
    util::Bytes sym;
  };

  /// One tracked generation.  After retiring, the record stays in its
  /// ring slot with active=false as a tombstone: its delivered_mask
  /// suppresses duplicate re-arrivals of already-released packets.
  struct Generation {
    std::uint16_t id = 0;
    bool active = false;
    std::uint8_t size = 0;  // 0 until the first repair announces it
    std::uint8_t repair_total = 0;
    std::uint16_t symbol_len = 0;
    std::uint8_t next_seq = 0;  // next in-order seq to release
    std::uint64_t known_mask = 0;          // symbol present in the arena
    std::uint64_t delivered_mask = 0;      // released downstream
    std::uint64_t reconstructed_mask = 0;  // rebuilt, not native
    std::uint32_t repair_seen_mask = 0;
    std::uint8_t rows_used = 0;
    util::Bytes arena;  // member wire images, concatenated
    std::array<std::uint32_t, kMaxGenerationPackets> arena_off{};
    std::array<std::uint16_t, kMaxGenerationPackets> arena_len{};
    std::array<packet::PacketPtr, kMaxGenerationPackets> held{};
    std::vector<Row> rows;  // buffered repair rows, capacity reused
  };

  [[nodiscard]] Generation& slot(std::uint16_t id) {
    return gens_[id % gens_.size()];
  }
  [[nodiscard]] const Generation& slot(std::uint16_t id) const {
    return gens_[id % gens_.size()];
  }

  /// Missing-member mask of a size-known generation.
  [[nodiscard]] static std::uint64_t missing_mask(const Generation& g) {
    const std::uint64_t all = g.size >= 64
                                  ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << g.size) - 1;
    return all & ~g.known_mask;
  }

  Generation& claim(std::uint16_t id, std::vector<Released>& out);
  void store_symbol(Generation& g, std::uint8_t seq, const packet::Packet& p);
  void reduce_rows(Generation& g, std::uint8_t seq);
  void try_solve(Generation& g);
  void release_ready(std::vector<Released>& out);
  void force_release_cursor(std::vector<Released>& out);
  void retire(Generation& g, bool completed);
  void after_arrival(std::size_t out_before, std::uint16_t cursor_before,
                     std::uint16_t arrival_gen, std::vector<Released>& out);

  RepairConfig cfg_;
  RepairDecoderStats stats_;
  std::vector<Generation> gens_;  // ring of gen_window records
  std::uint16_t cursor_ = 0;      // oldest generation not fully released
  bool cursor_locked_ = false;    // cursor_ meaningless before 1st arrival
  std::uint32_t blocked_ = 0;     // arrivals since the last release
  std::size_t held_count_ = 0;

  // The arrival being processed, so release_ready can tell a packet
  // that flowed straight through from one pulled out of the buffer.
  bool arrival_is_data_ = false;
  std::uint16_t arrival_gen_ = 0;
  std::uint8_t arrival_seq_ = 0;

  RepairPacket scratch_;      // repair parse scratch
  util::Bytes wire_scratch_;  // member wire-image scratch
};

}  // namespace bytecache::fec
