// GF(2^8) arithmetic for the coded-repair layer (DESIGN.md §13).
//
// The field is GF(256) under the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D, the classic Reed-Solomon modulus).  Tables are flat constexpr
// arrays: the antilog table is doubled so gf_mul needs no mod-255
// reduction, and the row kernels (gf_axpy / gf_scale) expand the scalar
// into one contiguous 256-byte product row and stream over it — the
// exact layout a split-nibble PSHUFB/TBL kernel would consume, so a SIMD
// drop-in changes only the .cc.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace bytecache::fec {

inline constexpr unsigned kFieldPoly = 0x11D;

namespace detail {

struct Gf256Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};
};

constexpr Gf256Tables make_gf256_tables() {
  Gf256Tables t{};
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.exp[i + 255] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if ((x & 0x100) != 0) x ^= kFieldPoly;
  }
  // log a + log b <= 508, but keep the whole table defined.
  t.exp[510] = t.exp[255];
  t.exp[511] = t.exp[256];
  return t;
}

inline constexpr Gf256Tables kGf = make_gf256_tables();

}  // namespace detail

/// a * b.
[[nodiscard]] constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kGf.exp[static_cast<unsigned>(detail::kGf.log[a]) +
                         detail::kGf.log[b]];
}

/// Multiplicative inverse; `a` must be nonzero.
[[nodiscard]] constexpr std::uint8_t gf_inv(std::uint8_t a) {
  return detail::kGf.exp[255u - detail::kGf.log[a]];
}

/// a / b; `b` must be nonzero.
[[nodiscard]] constexpr std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return detail::kGf.exp[255u + detail::kGf.log[a] - detail::kGf.log[b]];
}

/// dst[i] ^= c * src[i] for i < n — the Gaussian-elimination row op.
void gf_axpy(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
             std::uint8_t c);

/// buf[i] = c * buf[i] for i < n (pivot-row normalization).
void gf_scale(std::uint8_t* buf, std::size_t n, std::uint8_t c);

/// Coefficient of repair row r over generation member j: the Cauchy
/// matrix 1/(x_r + y_j) with x_r = r and y_j = 0x80|j.  The index sets
/// are disjoint (r < 128 <= y_j), so every square submatrix is
/// invertible — any R distinct repair rows reconstruct any <= R missing
/// members *deterministically*, where i.i.d.-random coefficients would
/// only succeed with high probability.  The decoder never assumes the
/// construction: coefficients travel on the wire with each repair.
[[nodiscard]] constexpr std::uint8_t repair_coeff(std::uint8_t r,
                                                  std::uint8_t j) {
  return gf_inv(static_cast<std::uint8_t>(r ^ (0x80u | j)));
}

}  // namespace bytecache::fec
