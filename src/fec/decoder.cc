#include "fec/decoder.h"

#include <algorithm>
#include <bit>

#include "fec/gf256.h"
#include "packet/ipv4.h"
#include "util/check.h"

namespace bytecache::fec {

RepairDecoder::RepairDecoder(const RepairConfig& cfg) : cfg_(cfg) {
  BC_CHECK(cfg_.gen_window >= 1) << "gen_window must be at least 1";
  gens_.resize(cfg_.gen_window);
}

void RepairDecoder::on_data(std::uint16_t gen_id, std::uint8_t gen_seq,
                            packet::PacketPtr pkt,
                            std::vector<Released>& out) {
  ++stats_.data_packets;
  if (!cursor_locked_) {
    cursor_ = gen_id;
    cursor_locked_ = true;
  }
  if (gen_id != cursor_ && !gen_newer(gen_id, cursor_)) {
    // The cursor already passed this generation — or the id is the
    // antipode (exactly 0x8000 away), which the serial comparison calls
    // neither newer nor older; claiming such an id would clobber the
    // in-window slot it aliases, so it is treated as stale too.  The
    // slot's tombstone (if not reused yet) tells duplicates from
    // genuine stragglers; a duplicate must be suppressed — re-decoding
    // it would replay its cache ops and desync the core decoder.
    const Generation& g = slot(gen_id);
    if (g.id == gen_id && !g.active && gen_seq < kMaxGenerationPackets &&  // NOLINT(bc-rawseq): gen_seq is a 0..63 member index, not a wrapping seq
        ((g.delivered_mask >> gen_seq) & 1) != 0) {
      ++stats_.duplicates;
      return;
    }
    ++stats_.late_delivered;
    out.push_back(Released{std::move(pkt), false});
    return;
  }

  const std::size_t out_before = out.size();
  const std::uint16_t cursor_before = cursor_;
  Generation& g = claim(gen_id, out);
  if (gen_seq >= kMaxGenerationPackets ||  // NOLINT(bc-rawseq): member index
      (g.size != 0 && gen_seq >= g.size)) {  // NOLINT(bc-rawseq): member index
    // A tag no generation can contain: corrupt shim or encoder bug.
    // Let the packet through — the core decoder's shim CRC decides.
    ++stats_.tag_rejects;
    out.push_back(Released{std::move(pkt), false});
    after_arrival(out_before, cursor_before, gen_id, out);
    return;
  }
  if (((g.known_mask | g.delivered_mask) >> gen_seq) & 1) {
    ++stats_.duplicates;
    after_arrival(out_before, cursor_before, gen_id, out);
    return;
  }

  store_symbol(g, gen_seq, *pkt);
  g.held[gen_seq] = std::move(pkt);
  ++held_count_;
  g.known_mask |= std::uint64_t{1} << gen_seq;
  reduce_rows(g, gen_seq);
  try_solve(g);

  arrival_is_data_ = true;
  arrival_gen_ = gen_id;
  arrival_seq_ = gen_seq;
  release_ready(out);
  arrival_is_data_ = false;
  after_arrival(out_before, cursor_before, gen_id, out);
}

void RepairDecoder::on_repair(util::BytesView payload,
                              std::vector<Released>& out) {
  if (!RepairPacket::parse_repair_into(payload, scratch_)) {
    ++stats_.repairs_malformed;
    return;
  }
  ++stats_.repair_packets;
  if (!cursor_locked_) {
    cursor_ = scratch_.gen_id;
    cursor_locked_ = true;
  }
  if (scratch_.gen_id != cursor_ && !gen_newer(scratch_.gen_id, cursor_)) {
    // Passed generation, or the unclaimable antipodal id (see on_data).
    ++stats_.repairs_redundant;
    return;
  }

  const std::size_t out_before = out.size();
  const std::uint16_t cursor_before = cursor_;
  Generation& g = claim(scratch_.gen_id, out);
  if (((g.repair_seen_mask >> scratch_.repair_index) & 1) != 0) {
    ++stats_.repairs_redundant;
    after_arrival(out_before, cursor_before, scratch_.gen_id, out);
    return;
  }
  if (g.size == 0) {
    // First repair of the generation announces its geometry.
    g.size = scratch_.gen_size;
    g.repair_total = scratch_.repair_total;
    g.symbol_len = scratch_.symbol_len;
    // Members held under a seq the announced size rules out can only be
    // corrupt tags; let them through for the core CRC to judge.
    for (std::size_t s = g.size; s < kMaxGenerationPackets; ++s) {
      if (!g.held[s]) continue;
      ++stats_.tag_rejects;
      g.known_mask &= ~(std::uint64_t{1} << s);
      out.push_back(Released{std::move(g.held[s]), false});
      --held_count_;
    }
  } else if (g.size != scratch_.gen_size ||
             g.repair_total != scratch_.repair_total ||
             g.symbol_len != scratch_.symbol_len) {
    ++stats_.repairs_malformed;
    after_arrival(out_before, cursor_before, scratch_.gen_id, out);
    return;
  }
  g.repair_seen_mask |= std::uint32_t{1} << scratch_.repair_index;

  if (g.rows.size() <= g.rows_used) g.rows.emplace_back();
  Row& row = g.rows[g.rows_used];
  row.coeff.fill(0);
  std::copy(scratch_.coeffs.begin(), scratch_.coeffs.end(),
            row.coeff.begin());
  row.sym = scratch_.symbol;
  ++g.rows_used;
  // Reduce the fresh row by every member already known, so rows always
  // reference only the still-missing columns regardless of whether the
  // member or the repair arrived first (a no-op for the older rows,
  // whose known coefficients are already zero).
  for (std::uint8_t s = 0; s < g.size; ++s) {
    if (((g.known_mask >> s) & 1) != 0 && row.coeff[s] != 0) {
      reduce_rows(g, s);
    }
  }
  try_solve(g);
  release_ready(out);
  after_arrival(out_before, cursor_before, scratch_.gen_id, out);
}

RepairDecoder::Generation& RepairDecoder::claim(std::uint16_t id,
                                                std::vector<Released>& out) {
  // Make room: the ring covers [cursor_, cursor_ + window); claiming
  // past its far edge force-releases from the cursor until it fits.
  while (gen_newer(id, cursor_) &&
         gen_distance(id, cursor_) >= gens_.size()) {
    force_release_cursor(out);
  }
  Generation& g = slot(id);
  if (g.active && g.id == id) return g;
  // Ids reaching claim() are cursor-or-newer within the window, so an
  // active occupant always IS the claimed generation; a reinit here can
  // only recycle a tombstone (retire() verified it holds nothing).
  BC_AUDIT(!g.active) << "claim(" << id << ") would clobber live slot "
                      << g.id;
  g.id = id;
  g.active = true;
  g.size = 0;
  g.repair_total = 0;
  g.symbol_len = 0;
  g.next_seq = 0;
  g.known_mask = 0;
  g.delivered_mask = 0;
  g.reconstructed_mask = 0;
  g.repair_seen_mask = 0;
  g.rows_used = 0;
  g.arena.clear();
  return g;
}

void RepairDecoder::store_symbol(Generation& g, std::uint8_t seq,
                                 const packet::Packet& p) {
  packet::to_wire_into(p, wire_scratch_);
  g.arena_off[seq] = static_cast<std::uint32_t>(g.arena.size());
  g.arena_len[seq] = static_cast<std::uint16_t>(wire_scratch_.size());
  util::append(g.arena, wire_scratch_);
}

void RepairDecoder::reduce_rows(Generation& g, std::uint8_t seq) {
  const std::uint8_t* img = g.arena.data() + g.arena_off[seq];
  const std::uint16_t len = g.arena_len[seq];
  for (std::uint8_t i = 0; i < g.rows_used; ++i) {
    Row& row = g.rows[i];
    const std::uint8_t c = row.coeff[seq];
    if (c == 0) continue;
    row.coeff[seq] = 0;
    if (row.sym.size() < 2) continue;
    // Member symbol = u16 wire length + wire image, zero-padded; the
    // padding contributes nothing, so only len bytes need the axpy.
    row.sym[0] ^= gf_mul(c, static_cast<std::uint8_t>(len >> 8));
    row.sym[1] ^= gf_mul(c, static_cast<std::uint8_t>(len));
    const std::size_t n =
        std::min<std::size_t>(len, row.sym.size() - 2);
    gf_axpy(row.sym.data() + 2, img, n, c);
  }
}

void RepairDecoder::try_solve(Generation& g) {
  if (g.size == 0) return;
  const std::uint64_t missing = missing_mask(g);
  const int nmiss = std::popcount(missing);
  if (nmiss == 0 || g.rows_used < nmiss) return;

  std::array<std::uint8_t, kMaxGenerationPackets> cols{};
  int ncols = 0;
  for (std::uint8_t s = 0; s < g.size; ++s) {
    if (((missing >> s) & 1) != 0) cols[ncols++] = s;
  }

  // Gauss-Jordan over the missing columns.  Rows were pre-reduced, so
  // only those columns carry nonzero coefficients.
  for (int m = 0; m < ncols; ++m) {
    const std::uint8_t col = cols[m];
    int pivot = -1;
    for (int r = m; r < g.rows_used; ++r) {
      if (g.rows[r].coeff[col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) {
      // Rank-deficient (only possible with non-Cauchy peers or after a
      // silently corrupted member poisoned a row): keep waiting.
      ++stats_.solve_deferred;
      return;
    }
    if (pivot != m) std::swap(g.rows[pivot], g.rows[m]);
    Row& prow = g.rows[m];
    const std::uint8_t inv = gf_inv(prow.coeff[col]);
    gf_scale(prow.coeff.data(), g.size, inv);
    gf_scale(prow.sym.data(), prow.sym.size(), inv);
    for (int r = 0; r < g.rows_used; ++r) {
      if (r == m) continue;
      Row& orow = g.rows[r];
      const std::uint8_t c = orow.coeff[col];
      if (c == 0) continue;
      gf_axpy(orow.coeff.data(), prow.coeff.data(), g.size, c);
      gf_axpy(orow.sym.data(), prow.sym.data(),
              std::min(orow.sym.size(), prow.sym.size()), c);
    }
  }

  // Row m now holds exactly member cols[m]'s symbol.
  for (int m = 0; m < ncols; ++m) {
    const std::uint8_t seq = cols[m];
    const util::Bytes& sym = g.rows[m].sym;
    bool ok = sym.size() >= 2;
    std::uint16_t len = 0;
    if (ok) {
      len = static_cast<std::uint16_t>((sym[0] << 8) | sym[1]);
      ok = len >= packet::Ipv4Header::kSize &&
           static_cast<std::size_t>(len) + 2 <= sym.size();
    }
    packet::PacketPtr pkt;
    if (ok) pkt = packet::from_wire(util::BytesView(sym).subspan(2, len));
    if (!pkt) {
      // A poisoned solve (corrupted member fed the elimination).  The
      // member stays missing downstream; mark it known so the release
      // cursor can pass the gap instead of wedging on it.
      ++stats_.reconstruct_failed;
      g.known_mask |= std::uint64_t{1} << seq;
      continue;
    }
    g.arena_off[seq] = static_cast<std::uint32_t>(g.arena.size());
    g.arena_len[seq] = len;
    g.arena.insert(g.arena.end(), sym.begin() + 2, sym.begin() + 2 + len);
    g.held[seq] = std::move(pkt);
    ++held_count_;
    g.known_mask |= std::uint64_t{1} << seq;
    g.reconstructed_mask |= std::uint64_t{1} << seq;
    ++stats_.reconstructed;
  }
  g.rows_used = 0;  // consumed
  ++stats_.solves;
}

void RepairDecoder::release_ready(std::vector<Released>& out) {
  if (!cursor_locked_) return;
  for (;;) {
    Generation& g = slot(cursor_);
    if (!g.active || g.id != cursor_) {
      // Ghost generation: nothing of it ever arrived.  Skip it only
      // when newer traffic proves the stream moved past it; otherwise
      // hold position and wait.
      bool newer_active = false;
      for (const Generation& o : gens_) {
        if (o.active && gen_newer(o.id, cursor_)) {
          newer_active = true;
          break;
        }
      }
      if (!newer_active) break;
      ++cursor_;
      blocked_ = 0;
      continue;
    }
    while (g.next_seq < kMaxGenerationPackets &&  // NOLINT(bc-rawseq): member index
           ((g.known_mask >> g.next_seq) & 1) != 0) {
      const std::uint8_t s = g.next_seq;
      g.delivered_mask |= std::uint64_t{1} << s;
      ++g.next_seq;
      if (!g.held[s]) continue;  // reconstruct_failed gap
      const bool rebuilt = ((g.reconstructed_mask >> s) & 1) != 0;
      const bool direct = arrival_is_data_ && !rebuilt &&
                          arrival_gen_ == g.id && arrival_seq_ == s;
      ++stats_.released;
      if (!direct && !rebuilt) ++stats_.resequenced;
      out.push_back(Released{std::move(g.held[s]), rebuilt});
      --held_count_;
    }
    if (g.size != 0 && g.next_seq >= g.size) {  // NOLINT(bc-rawseq): member index
      retire(g, /*completed=*/true);
      ++cursor_;
      blocked_ = 0;
      continue;
    }
    break;
  }
}

void RepairDecoder::force_release_cursor(std::vector<Released>& out) {
  ++stats_.forced_releases;
  Generation& g = slot(cursor_);
  if (g.active && g.id == cursor_) {
    for (std::size_t s = g.next_seq; s < kMaxGenerationPackets; ++s) {
      if (!g.held[s]) continue;
      const bool rebuilt = ((g.reconstructed_mask >> s) & 1) != 0;
      g.delivered_mask |= std::uint64_t{1} << s;
      ++stats_.released;
      if (!rebuilt) ++stats_.resequenced;
      out.push_back(Released{std::move(g.held[s]), rebuilt});
      --held_count_;
    }
    retire(g, /*completed=*/false);
  }
  ++cursor_;
  blocked_ = 0;
}

void RepairDecoder::retire(Generation& g, bool completed) {
  if (completed) {
    ++stats_.generations_completed;
  } else {
    ++stats_.generations_abandoned;
  }
  g.active = false;
  g.rows_used = 0;
  g.arena.clear();
  for (packet::PacketPtr& p : g.held) {
    BC_CHECK(!p) << "retiring generation " << g.id
                 << " with a packet still held";
  }
}

void RepairDecoder::after_arrival(std::size_t out_before,
                                  std::uint16_t cursor_before,
                                  std::uint16_t arrival_gen,
                                  std::vector<Released>& out) {
  const bool progressed =
      out.size() > out_before || cursor_ != cursor_before;
  if (progressed) {
    blocked_ = 0;
  } else if (gen_newer(arrival_gen, cursor_)) {
    // Only arrivals from *newer* generations pay the blocked budget:
    // the cursor generation's own members and repairs are expected
    // traffic still converging on a solve, however many there are (a
    // hole at seq 0 buffers G-1 members before the first repair lands).
    // Newer-generation arrivals with no cursor progress are the stream
    // leaving the generation behind — including every TCP-timeout
    // retransmission, which the encoder re-tags into a fresh
    // generation, so a starved sender still pays this budget down.
    ++blocked_;
  }

  // Unrecoverable cursor generation — every repair seen, still short of
  // rows — is released as soon as the stream proves it moved past the
  // generation (an arrival from a newer one).  Arrivals for the cursor
  // generation itself never trigger the give-up: with repairs reordered
  // in front of their members, "missing" columns are merely in flight
  // and each one that lands narrows the deficit.  A wedged cursor with
  // no newer traffic falls to the arrival budget instead.
  bool give_up = false;
  const Generation& g = slot(cursor_);
  if (g.active && g.id == cursor_ && g.size != 0 && g.repair_total != 0 &&
      gen_newer(arrival_gen, cursor_) &&
      std::popcount(g.repair_seen_mask) >=
          static_cast<int>(g.repair_total) &&
      std::popcount(missing_mask(g)) > static_cast<int>(g.rows_used)) {
    give_up = true;
  }
  if (give_up || blocked_ > cfg_.blocked_arrival_budget) {
    force_release_cursor(out);
    release_ready(out);
  }
}

void RepairDecoder::drain(std::vector<Released>& out) {
  for (;;) {
    const Generation* oldest = nullptr;
    for (const Generation& g : gens_) {
      if (!g.active) continue;
      if (oldest == nullptr || gen_newer(oldest->id, g.id)) oldest = &g;
    }
    if (oldest == nullptr) break;
    cursor_ = oldest->id;
    force_release_cursor(out);
  }
  blocked_ = 0;
}

void RepairDecoder::audit() const {
  if (!util::kAuditEnabled) return;
  std::size_t held = 0;
  for (const Generation& g : gens_) {
    for (std::size_t s = 0; s < kMaxGenerationPackets; ++s) {
      const bool has = g.held[s] != nullptr;
      held += has ? 1 : 0;
      if (has) {
        BC_AUDIT(g.active) << "retired generation " << g.id
                           << " still holds seq " << s;
        BC_AUDIT(((g.known_mask >> s) & 1) != 0)
            << "generation " << g.id << " holds seq " << s
            << " without its known bit";
        BC_AUDIT(((g.delivered_mask >> s) & 1) == 0)
            << "generation " << g.id << " holds already-delivered seq "
            << s;
      }
    }
    if (!g.active) continue;
    BC_AUDIT(!cursor_locked_ || !gen_newer(cursor_, g.id))
        << "active generation " << g.id << " behind cursor " << cursor_;
    BC_AUDIT(g.rows_used <= g.rows.size())
        << "rows_used " << int{g.rows_used} << " beyond storage "
        << g.rows.size();
    if (g.id != (cursor_locked_ ? cursor_ : g.id)) {
      BC_AUDIT(g.next_seq == 0 || g.id == cursor_)
          << "non-cursor generation " << g.id << " partially released";
    }
  }
  BC_AUDIT(held == held_count_)
      << held << " packets held but counter says " << held_count_;
  BC_AUDIT(stats_.data_packets + stats_.reconstructed ==
           stats_.released + stats_.late_delivered + stats_.tag_rejects +
               stats_.duplicates + held_count_)
      << "packet conservation violated: " << stats_.data_packets << "+"
      << stats_.reconstructed << " in, " << stats_.released << "+"
      << stats_.late_delivered << "+" << stats_.tag_rejects << "+"
      << stats_.duplicates << "+" << held_count_ << " accounted";
  BC_AUDIT(stats_.resequenced <= stats_.released)  // NOLINT(bc-rawseq): released/resequenced are plain counters
      << stats_.resequenced << " resequenced of " << stats_.released;
}

}  // namespace bytecache::fec
