#include "fec/gf256.h"

namespace bytecache::fec {

void gf_axpy(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
             std::uint8_t c) {
  if (c == 0 || n == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  // One 256-byte product row turns the two-table lookup per byte into a
  // single indexed load; the row stays cache-resident across the sweep.
  std::uint8_t row[256];
  for (unsigned v = 0; v < 256; ++v) {
    row[v] = gf_mul(c, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void gf_scale(std::uint8_t* buf, std::size_t n, std::uint8_t c) {
  if (c == 1 || n == 0) return;
  std::uint8_t row[256];
  for (unsigned v = 0; v < 256; ++v) {
    row[v] = gf_mul(c, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < n; ++i) buf[i] = row[buf[i]];
}

}  // namespace bytecache::fec
