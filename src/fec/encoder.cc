#include "fec/encoder.h"

#include "fec/gf256.h"
#include "util/check.h"
#include "util/crc32.h"

namespace bytecache::fec {

RepairEncoder::RepairEncoder(const RepairConfig& cfg) : cfg_(cfg) {
  BC_CHECK(cfg_.generation_packets >= 1 &&
           cfg_.generation_packets <= kMaxGenerationPackets)
      << "generation_packets " << int{cfg_.generation_packets}
      << " outside [1, " << kMaxGenerationPackets << "]";
  BC_CHECK(cfg_.repair_packets >= 1 &&
           cfg_.repair_packets <= kMaxRepairPackets)
      << "repair_packets " << int{cfg_.repair_packets} << " outside [1, "
      << kMaxRepairPackets << "]";
  emitted_.resize(2u * cfg_.repair_packets);
}

void RepairEncoder::begin_packet() { emitted_count_ = 0; }

RepairEncoder::Tag RepairEncoder::next_tag() {
  BC_CHECK(!tag_pending_) << "next_tag() called twice without add_member()";
  tag_pending_ = true;
  return Tag{gen_id_, member_count_};
}

void RepairEncoder::add_member(util::BytesView wire_image) {
  BC_CHECK(tag_pending_) << "add_member() without a preceding next_tag()";
  tag_pending_ = false;
  offsets_[member_count_] = static_cast<std::uint32_t>(arena_.size());
  util::append(arena_, wire_image);
  offsets_[member_count_ + 1] = static_cast<std::uint32_t>(arena_.size());
  if (wire_image.size() > max_len_) {
    max_len_ = static_cast<std::uint16_t>(wire_image.size());
  }
  ++member_count_;
  ++stats_.members;
  if (member_count_ >= cfg_.generation_packets) close_generation();
}

void RepairEncoder::close_generation() {
  if (member_count_ == 0) return;
  emit_repairs();
  ++stats_.generations;
  if (member_count_ < cfg_.generation_packets) ++stats_.early_closes;
  ++gen_id_;
  member_count_ = 0;
  max_len_ = 0;
  arena_.clear();
}

void RepairEncoder::emit_repairs() {
  const std::uint16_t symbol_len = static_cast<std::uint16_t>(max_len_ + 2);
  scratch_.gen_id = gen_id_;
  scratch_.gen_size = member_count_;
  scratch_.repair_total = cfg_.repair_packets;
  scratch_.symbol_len = symbol_len;
  scratch_.coeffs.resize(member_count_);
  for (std::uint8_t r = 0; r < cfg_.repair_packets; ++r) {
    BC_CHECK(emitted_count_ < emitted_.size())
        << "more than two generation closes within one packet";
    scratch_.repair_index = r;
    scratch_.symbol.assign(symbol_len, 0);
    for (std::uint8_t j = 0; j < member_count_; ++j) {
      const std::uint8_t c = repair_coeff(r, j);
      scratch_.coeffs[j] = c;
      const std::uint32_t off = offsets_[j];
      const std::uint16_t len =
          static_cast<std::uint16_t>(offsets_[j + 1] - off);
      scratch_.symbol[0] ^= gf_mul(c, static_cast<std::uint8_t>(len >> 8));
      scratch_.symbol[1] ^= gf_mul(c, static_cast<std::uint8_t>(len));
      gf_axpy(scratch_.symbol.data() + 2, arena_.data() + off, len, c);
    }
    // Serialize with a zero CRC, then patch the real one in (the CRC
    // covers exactly the bytes after the header).
    scratch_.crc = 0;
    util::Bytes& out = emitted_[emitted_count_];
    scratch_.serialize_into(out);
    const std::uint32_t crc =
        util::crc32(util::BytesView(out).subspan(kRepairHeaderBytes));
    out[9] = static_cast<std::uint8_t>(crc >> 24);
    out[10] = static_cast<std::uint8_t>(crc >> 16);
    out[11] = static_cast<std::uint8_t>(crc >> 8);
    out[12] = static_cast<std::uint8_t>(crc);
    ++emitted_count_;
    ++stats_.repair_payloads;
    stats_.repair_bytes += out.size();
  }
}

void RepairEncoder::audit() const {
  if (!util::kAuditEnabled) return;
  BC_AUDIT(member_count_ < cfg_.generation_packets)
      << "open generation holds " << int{member_count_}
      << " members, at or past the close point "
      << int{cfg_.generation_packets};
  BC_AUDIT(stats_.repair_payloads ==
           stats_.generations * cfg_.repair_packets)
      << stats_.repair_payloads << " repair payloads from "
      << stats_.generations << " generations of " << int{cfg_.repair_packets};
  BC_AUDIT(stats_.early_closes <= stats_.generations)
      << stats_.early_closes << " early closes of " << stats_.generations
      << " generations";
  BC_AUDIT(stats_.members >= stats_.generations)
      << stats_.members << " members across " << stats_.generations
      << " generations";
}

}  // namespace bytecache::fec
