// Knobs of the coded-repair layer (DESIGN.md §13).
#pragma once

#include <cstddef>
#include <cstdint>

namespace bytecache::fec {

/// Hard wire-format bounds: the repair header carries gen_size and the
/// per-member coefficient vector as single bytes, and the decoder tracks
/// membership in 64-bit masks (fec/wire.h, fec/decoder.h).
inline constexpr std::size_t kMaxGenerationPackets = 64;
inline constexpr std::size_t kMaxRepairPackets = 16;

struct RepairConfig {
  /// Data packets per generation (G).  Smaller generations recover
  /// faster (repairs arrive sooner after a loss) but spend more repair
  /// overhead per data byte.
  std::uint8_t generation_packets = 16;

  /// Coded repair packets emitted per closed generation (R): any <= R
  /// lost members are reconstructed without a resync round-trip.
  std::uint8_t repair_packets = 2;

  /// Decoder: generations tracked concurrently (a ring; claiming a
  /// newer generation force-releases the release-cursor generation when
  /// the window is full).  Bounds the reorder cache's memory.
  std::uint16_t gen_window = 8;

  /// Decoder: arrivals from generations *newer* than the cursor that
  /// fail to advance it before the cursor generation is force-released
  /// with gaps (its own members and repairs never charge — they are
  /// still converging on a solve).  Bounds both the re-sequencing depth
  /// and the latency an unrecoverable generation can add; the gaps then
  /// fall through to TCP recovery.  Must stay well under what a
  /// backing-off TCP sender can deliver before it declares the
  /// connection dead (tcp::TcpConfig's max_backoffs timeouts yield
  /// roughly 1 + repair_packets newer-generation arrivals each, since
  /// retransmissions are re-tagged into fresh generations): a buffered
  /// hole starves the very arrival stream that pays this budget, so too
  /// large a value turns one unlucky generation — member and all its
  /// repairs lost — into a connection abort.
  std::uint32_t blocked_arrival_budget = 12;
};

}  // namespace bytecache::fec
