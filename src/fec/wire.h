// Wire format of coded repair packets (DESIGN.md §13).
//
// A repair packet rides in an IP payload whose protocol is IpProto::kDre,
// distinguished from shim-encoded data by its leading magic byte:
//
//   magic(1)=0xD7 version(1)=1 gen_id(2) gen_size(1) repair_index(1)
//   repair_total(1) symbol_len(2) crc32-of-coeffs-and-symbol(4)
//
// followed by gen_size coefficient bytes and symbol_len coded symbol
// bytes.  The symbol is the GF(256) linear combination, under those
// coefficients, of the generation members' symbols — a member symbol
// being a 2-byte big-endian wire length followed by the member's full IP
// wire image, zero-padded to the generation's common symbol_len.  The
// CRC turns a corrupted repair into a clean parse failure instead of a
// poisoned Gaussian elimination; repair_index/repair_total let the
// decoder know when every repair of a generation has been seen.
#pragma once

#include <cstdint>

#include "fec/params.h"
#include "util/bytes.h"

namespace bytecache::fec {

inline constexpr std::uint8_t kRepairMagic = 0xD7;
inline constexpr std::uint8_t kRepairVersion = 1;
inline constexpr std::size_t kRepairHeaderBytes = 13;

/// Symbol-length sanity bounds for the parser: a symbol is a 2-byte
/// length prefix plus at least one wire byte; the upper bound keeps a
/// forged header from asking the decoder to buffer megabytes.
inline constexpr std::size_t kMinSymbolBytes = 3;
inline constexpr std::size_t kMaxSymbolBytes = 4096;

struct RepairPacket {
  std::uint16_t gen_id = 0;
  std::uint8_t gen_size = 0;      // data members in the generation
  std::uint8_t repair_index = 0;  // 0-based among the generation's repairs
  std::uint8_t repair_total = 0;
  std::uint16_t symbol_len = 0;
  std::uint32_t crc = 0;          // over coefficients + symbol
  util::Bytes coeffs;             // gen_size coefficient bytes
  util::Bytes symbol;             // symbol_len coded bytes

  [[nodiscard]] std::size_t wire_size() const {
    return kRepairHeaderBytes + coeffs.size() + symbol.size();
  }

  /// Serializes into `out`, clearing it first (capacity reused).
  void serialize_into(util::Bytes& out) const;

  /// Parses a repair payload, refilling `out` in place (scratch reuse).
  /// False on malformed input: bad magic/version, gen_size or
  /// repair_total off the wire bounds, repair_index >= repair_total,
  /// symbol_len outside [kMinSymbolBytes, kMaxSymbolBytes], a byte count
  /// disagreeing with the header, or a CRC mismatch.
  static bool parse_repair_into(util::BytesView wire, RepairPacket& out);
};

/// Cheap pre-classifier for the decoder gateway; parse_repair_into still
/// decides validity.
[[nodiscard]] inline bool is_repair_payload(util::BytesView payload) {
  return !payload.empty() && payload[0] == kRepairMagic;
}

/// Serial-number comparison for u16 generation ids (mirrors
/// resilience::epoch_newer; generation ids wrap).
[[nodiscard]] constexpr bool gen_newer(std::uint16_t a, std::uint16_t b) {
  const std::uint16_t d = static_cast<std::uint16_t>(a - b);
  return d != 0 && d < 0x8000;
}

/// How many generations ahead `a` is of `b`; only meaningful when
/// !gen_newer(b, a).
[[nodiscard]] constexpr std::uint16_t gen_distance(std::uint16_t a,
                                                   std::uint16_t b) {
  return static_cast<std::uint16_t>(a - b);
}

}  // namespace bytecache::fec
