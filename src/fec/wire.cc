#include "fec/wire.h"

#include "util/crc32.h"

namespace bytecache::fec {

void RepairPacket::serialize_into(util::Bytes& out) const {
  out.clear();
  out.reserve(wire_size());
  util::put_u8(out, kRepairMagic);
  util::put_u8(out, kRepairVersion);
  util::put_u16(out, gen_id);
  util::put_u8(out, gen_size);
  util::put_u8(out, repair_index);
  util::put_u8(out, repair_total);
  util::put_u16(out, symbol_len);
  util::put_u32(out, crc);
  util::append(out, coeffs);
  util::append(out, symbol);
}

bool RepairPacket::parse_repair_into(util::BytesView wire, RepairPacket& p) {
  if (wire.size() < kRepairHeaderBytes) return false;
  std::size_t off = 0;
  if (util::get_u8(wire, off) != kRepairMagic) return false;
  if (util::get_u8(wire, off) != kRepairVersion) return false;
  p.gen_id = util::get_u16(wire, off);
  p.gen_size = util::get_u8(wire, off);
  p.repair_index = util::get_u8(wire, off);
  p.repair_total = util::get_u8(wire, off);
  p.symbol_len = util::get_u16(wire, off);
  p.crc = util::get_u32(wire, off);
  if (p.gen_size == 0 || p.gen_size > kMaxGenerationPackets) return false;
  if (p.repair_total == 0 || p.repair_total > kMaxRepairPackets) return false;
  if (p.repair_index >= p.repair_total) return false;
  if (p.symbol_len < kMinSymbolBytes || p.symbol_len > kMaxSymbolBytes) {
    return false;
  }
  if (wire.size() !=
      kRepairHeaderBytes + p.gen_size + static_cast<std::size_t>(p.symbol_len)) {
    return false;
  }
  const util::BytesView body = wire.subspan(kRepairHeaderBytes);
  if (util::crc32(body) != p.crc) return false;
  p.coeffs.assign(body.begin(), body.begin() + p.gen_size);
  p.symbol.assign(body.begin() + p.gen_size, body.end());
  return true;
}

}  // namespace bytecache::fec
