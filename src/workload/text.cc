#include "workload/text.h"

#include <array>

namespace bytecache::workload {
namespace {

// A compact vocabulary; sentence diversity comes from combinatorics.
constexpr std::array<const char*, 96> kWords = {
    "the",      "of",       "and",      "to",        "in",       "a",
    "is",       "that",     "was",      "for",       "it",       "with",
    "as",       "his",      "on",       "be",        "at",       "by",
    "had",      "not",      "are",      "but",       "from",     "or",
    "have",     "an",       "they",     "which",     "one",      "you",
    "were",     "her",      "all",      "she",       "there",    "would",
    "their",    "we",       "him",      "been",      "has",      "when",
    "who",      "will",     "more",     "no",        "if",       "out",
    "network",  "packet",   "wireless", "caching",   "traffic",  "mobile",
    "data",     "signal",   "channel",  "station",   "carrier",  "antenna",
    "spectrum", "protocol", "gateway",  "encoder",   "decoder",  "latency",
    "window",   "stream",   "segment",  "transfer",  "storage",  "content",
    "morning",  "evening",  "journey",  "mountain",  "river",    "village",
    "garden",   "winter",   "summer",   "captain",   "doctor",   "letter",
    "silence",  "shadow",   "whisper",  "thunder",   "harvest",  "lantern",
    "voyage",   "meadow",   "orchard",  "twilight",  "ember",    "frost",
};

}  // namespace

std::string make_sentence(util::Rng& rng) {
  const std::size_t words = 6 + rng.uniform(0, 8);
  std::string s;
  for (std::size_t i = 0; i < words; ++i) {
    std::string w = kWords[rng.uniform(0, kWords.size() - 1)];
    if (i == 0) w[0] = static_cast<char>(w[0] - 'a' + 'A');
    s += w;
    s += (i + 1 == words) ? ". " : " ";
  }
  return s;
}

std::vector<std::string> make_sentence_pool(util::Rng& rng,
                                            std::size_t count) {
  std::vector<std::string> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) pool.push_back(make_sentence(rng));
  return pool;
}

util::Bytes random_text(util::Rng& rng, std::size_t size) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:!?";
  util::Bytes out;
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(static_cast<std::uint8_t>(
        kAlphabet[rng.uniform(0, sizeof(kAlphabet) - 2)]));
  }
  return out;
}

}  // namespace bytecache::workload
