#include "workload/generators.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "workload/text.h"

namespace bytecache::workload {

util::Bytes make_ebook(util::Rng& rng, const EbookParams& p) {
  std::vector<std::string> history;
  util::Bytes out;
  out.reserve(p.size + 128);
  std::size_t since_break = 0;
  while (out.size() < p.size) {
    std::string s;
    if (!history.empty() && rng.chance(p.repeat_prob)) {
      s = history[rng.uniform(0, history.size() - 1)];
    } else {
      s = make_sentence(rng);
      history.push_back(s);
    }
    util::append(out, util::to_bytes(s));
    since_break += s.size();
    if (since_break > 400 + rng.uniform(0, 300)) {
      util::append(out, util::to_bytes("\n\n"));
      since_break = 0;
    }
  }
  out.resize(p.size);
  return out;
}

util::Bytes make_video(util::Rng& rng, std::size_t size) {
  // A fixed 48-byte "container header" recurs every ~64 KB of otherwise
  // incompressible payload (codec/container framing), giving the sparse
  // sub-percent redundancy real media files show.
  util::Bytes header;
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t v = rng.next_u64();
    for (int b = 0; b < 8; ++b) {
      header.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  }
  util::Bytes out;
  out.reserve(size + 64);
  std::size_t until_header = 4096;  // first fragment header comes early
  while (out.size() < size) {
    if (until_header == 0) {
      util::append(out, header);
      until_header = 48'000 + rng.uniform(0, 32'000);
      continue;
    }
    const std::size_t chunk = std::min<std::size_t>(until_header, 8);
    const std::uint64_t v = rng.next_u64();
    for (std::size_t b = 0; b < chunk; ++b) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
    until_header -= chunk;
  }
  out.resize(size);
  return out;
}

util::Bytes make_web_page(util::Rng& rng, const WebPageParams& p) {
  // Boilerplate is a deterministic function of the site seed, so pages of
  // the same "site" share it verbatim (inter-object redundancy).
  util::Rng site_rng(p.site_seed);
  std::string head =
      "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
      "<title>synthetic page</title><style>\n";
  while (head.size() < p.boilerplate - 200) {
    const std::size_t cls = site_rng.uniform(0, 9999);
    head += ".c" + std::to_string(cls) +
            "{margin:0 auto;padding:4px 8px;border:1px solid #ccc;"
            "font-family:Helvetica,Arial,sans-serif;color:#33" +
            std::to_string(site_rng.uniform(10, 99)) + "44;}\n";
  }
  head +=
      "</style></head><body><nav class=\"top-navigation-bar\">"
      "<a href=\"/home\">Home</a><a href=\"/news\">News</a>"
      "<a href=\"/about\">About</a><a href=\"/contact\">Contact</a>"
      "</nav><main>\n";

  std::string body;
  for (std::size_t i = 0; i < p.items; ++i) {
    // Identical markup skeleton around varying content.
    body += "<article class=\"entry-card rounded shadowed\"><header "
            "class=\"entry-header\"><h2 class=\"entry-title\">";
    body += make_sentence(rng);
    body += "</h2></header><section class=\"entry-body text-justified\"><p>";
    for (std::size_t s = 0; s < p.sentences_per_item; ++s) {
      body += make_sentence(rng);
    }
    body += "</p></section><footer class=\"entry-footer muted small\">"
            "posted under <span class=\"tag-list\">synthetic</span>"
            "</footer></article>\n";
  }
  body += "</main><footer id=\"page-footer\">generated content — "
          "all rights reserved</footer></body></html>\n";

  return util::to_bytes(head + body);
}

std::optional<util::Bytes> load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  util::Bytes out(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read = out.empty() ? 0 : std::fread(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (read != out.size()) return std::nullopt;
  return out;
}

util::Bytes make_dep_file(util::Rng& rng, const DepFileParams& p) {
  const std::size_t chunks = p.near_chunks + p.far_chunks;
  const std::size_t redundant = chunks * p.chunk_len;
  const std::size_t gap = (p.unit - redundant) / (chunks + 1);

  util::Bytes out;
  out.reserve(p.size + p.unit);
  std::size_t unit_index = 0;
  while (out.size() < p.size) {
    const std::size_t unit_start = out.size();
    if (unit_index == 0) {
      util::append(out, random_text(rng, p.unit));
    } else {
      // Pick distinct source units: near ones from the trailing window,
      // far ones from the wide window.
      std::vector<std::size_t> sources;
      auto pick = [&](std::size_t window, std::size_t count) {
        const std::size_t lo =
            unit_index > window ? unit_index - window : 0;
        for (std::size_t got = 0; got < count; ++got) {
          // Prefer distinct sources; fall back to a duplicate when the
          // early-file candidate pool is too small.
          std::size_t u = lo;
          for (int attempt = 0; attempt < 16; ++attempt) {
            u = lo + rng.uniform(0, unit_index - 1 - lo);
            if (std::find(sources.begin(), sources.end(), u) ==
                sources.end()) {
              break;
            }
          }
          sources.push_back(u);
        }
      };
      pick(p.near_window_units, p.near_chunks);
      pick(p.far_window_units, p.far_chunks);
      for (std::size_t src_unit : sources) {
        util::append(out, random_text(rng, gap));
        const std::size_t src_off = rng.uniform(0, p.unit - p.chunk_len);
        const std::size_t from = src_unit * p.unit + src_off;
        // Copy through a temporary: inserting a self-range is UB if the
        // vector reallocates.
        const util::Bytes chunk(out.begin() + from,
                                out.begin() + from + p.chunk_len);
        util::append(out, chunk);
      }
      // Fresh tail to complete the unit.
      util::append(out, random_text(rng, p.unit - (out.size() - unit_start)));
    }
    ++unit_index;
  }
  out.resize(p.size);
  return out;
}

util::Bytes make_file1(util::Rng& rng, std::size_t size) {
  DepFileParams p;
  p.size = size;
  p.chunk_len = 250;
  p.near_chunks = 1;
  p.far_chunks = 2;
  p.near_window_units = 8;
  p.far_window_units = 36;
  return make_dep_file(rng, p);
}

util::Bytes make_file2(util::Rng& rng, std::size_t size) {
  DepFileParams p;
  p.size = size;
  p.chunk_len = 125;
  p.near_chunks = 2;
  p.far_chunks = 4;
  p.near_window_units = 8;
  p.far_window_units = 48;
  return make_dep_file(rng, p);
}

}  // namespace bytecache::workload
