// Seeded English-like text generation.
//
// Builds the "ebook" style objects of the paper's Table I: natural text
// whose only redundancy is the occasional repeated phrase or sentence.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace bytecache::workload {

/// One random sentence (words from a fixed vocabulary, 6–14 words).
[[nodiscard]] std::string make_sentence(util::Rng& rng);

/// A pool of distinct sentences to sample from.
[[nodiscard]] std::vector<std::string> make_sentence_pool(util::Rng& rng,
                                                          std::size_t count);

/// Random printable filler (high entropy, no 16-byte repeats in practice).
[[nodiscard]] util::Bytes random_text(util::Rng& rng, std::size_t size);

}  // namespace bytecache::workload
