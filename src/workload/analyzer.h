// Offline analyzers: measure an object's redundancy and dependency
// structure by running the real codec over its packetized form (no
// network, no loss).
//
// redundancy_percent() reproduces Table I's metric: the byte savings the
// encoder achieves when its cache is limited to (approximately) the last
// `window_packets` packets.  avg_dependencies() reproduces the File 1 /
// File 2 statistic of Section VI: the mean number of *distinct* stored
// packets an encoded packet references.
#pragma once

#include <cstddef>

#include "core/params.h"
#include "util/bytes.h"

namespace bytecache::workload {

struct RedundancyReport {
  double percent_saved = 0.0;   // payload bytes eliminated / payload bytes
  double percent_encoded = 0.0;  // packets encoded / data packets
};

/// Segments `object` into `mss`-sized packets (prefixed by a 20-byte
/// header surrogate, as on the wire) and encodes them with the naive
/// policy and a cache bounded to ~`window_packets` packets.
[[nodiscard]] RedundancyReport redundancy_percent(
    util::BytesView object, std::size_t window_packets,
    const core::DreParams& dre = {}, std::size_t mss = 1460);

struct DependencyReport {
  double avg_distinct_deps = 0.0;  // over encoded packets
  double max_distinct_deps = 0.0;
  double avg_regions = 0.0;
  double percent_saved = 0.0;
};

/// Unbounded-cache encode of the object; reports dependency statistics.
[[nodiscard]] DependencyReport avg_dependencies(
    util::BytesView object, const core::DreParams& dre = {},
    std::size_t mss = 1460);

}  // namespace bytecache::workload
