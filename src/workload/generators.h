// Synthetic web objects with controlled redundancy (DESIGN.md
// "Paper substitutions").
//
// The paper evaluates on real objects: ebooks (the 587,567-byte text of
// Section IV-C), videos, web pages, and two files distinguished by their
// average number of dependencies to distinct IP packets (File 1: 4,
// File 2: 7 — Section VI).  These generators produce seeded synthetic
// equivalents whose redundancy amount and *spread* are explicit
// parameters, verified by the analyzers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace bytecache::workload {

/// Ebook: mostly-unique prose with rare repeated sentences.  Each
/// sentence is fresh with probability 1 - repeat_prob; otherwise a
/// uniformly random earlier sentence is repeated verbatim.  Because
/// repeats are spread over the whole history, a cache window of k packets
/// only "sees" the nearby ones — redundancy grows with k, landing in
/// Table I's ebook band (fractions of a percent within 10–1000 packets).
struct EbookParams {
  std::size_t size = 587'567;  // the paper's e-book size
  double repeat_prob = 0.015;
};
[[nodiscard]] util::Bytes make_ebook(util::Rng& rng, const EbookParams& p);

/// Video: effectively incompressible compressed media — random bytes
/// interspersed with sparse repeated container headers (the 0.009–1%
/// band Table I reports for video rather than exactly zero).
[[nodiscard]] util::Bytes make_video(util::Rng& rng, std::size_t size);

/// Web page: HTML with shared boilerplate (head/CSS/nav) and repeated
/// item markup — the high-redundancy end of Table I.
struct WebPageParams {
  std::size_t items = 40;          // repeated list entries
  std::size_t sentences_per_item = 3;  // unique prose per item (dilutes
                                       // the repeated markup)
  std::size_t boilerplate = 2400;  // shared head + nav bytes
  std::uint64_t site_seed = 7;     // pages of one "site" share templates
};
[[nodiscard]] util::Bytes make_web_page(util::Rng& rng, const WebPageParams& p);

/// Dependency-controlled file (the paper's File 1 / File 2).
///
/// The byte stream is generated in MSS-sized units; each unit embeds
/// copied chunks separated by fresh high-entropy filler.  Real content
/// mixes redundancy localities, so chunks come in two kinds:
///   - `near_chunks` copied from the last `near_window_units` units
///     (the just-sent packets — typically still in flight), and
///   - `far_chunks` copied from up to `far_window_units` back (long since
///     delivered).
/// Encoding a unit references near_chunks + far_chunks distinct packets
/// (the paper's "average number of dependencies to distinct IP packets"),
/// and the redundant fraction is total chunks * chunk_len / unit.  The
/// near/far split controls how strongly a packet loss cascades into the
/// in-flight window — the effect Section VI attributes to File 2's higher
/// dependency count.
struct DepFileParams {
  std::size_t size = 587'567;
  std::size_t unit = 1460;  // TCP MSS payload per packet
  std::size_t chunk_len = 190;
  std::size_t near_chunks = 1;
  std::size_t far_chunks = 3;
  std::size_t near_window_units = 8;
  std::size_t far_window_units = 80;
};
[[nodiscard]] util::Bytes make_dep_file(util::Rng& rng, const DepFileParams& p);

/// Loads an arbitrary on-disk file as a workload object (so the benches
/// and the CLI can run against real content); nullopt on I/O error.
[[nodiscard]] std::optional<util::Bytes> load_file(const std::string& path);

/// The two evaluation files of Section VI.
[[nodiscard]] util::Bytes make_file1(util::Rng& rng,
                                     std::size_t size = 587'567);
[[nodiscard]] util::Bytes make_file2(util::Rng& rng,
                                     std::size_t size = 587'567);

}  // namespace bytecache::workload
