#include "workload/analyzer.h"

#include <algorithm>

#include "core/encoder.h"
#include "core/policies.h"
#include "packet/packet.h"
#include "packet/tcp.h"

namespace bytecache::workload {
namespace {

/// Builds the TCP segments the sender would produce for `object` and runs
/// them through `encoder`, collecting per-packet EncodeInfo.
template <typename Fn>
void encode_object(util::BytesView object, std::size_t mss,
                   core::Encoder& encoder, Fn&& per_packet) {
  std::uint32_t seq = 1000;
  for (std::size_t off = 0; off < object.size(); off += mss) {
    const std::size_t len = std::min(mss, object.size() - off);
    packet::TcpHeader h;
    h.seq = seq;
    h.flags = packet::TcpHeader::kAck | packet::TcpHeader::kPsh;
    seq += static_cast<std::uint32_t>(len);
    util::Bytes segment;
    segment.reserve(packet::TcpHeader::kSize + len);
    h.serialize(segment, object.subspan(off, len), 0x0A000001, 0x0A000101);
    auto pkt = packet::make_packet(0x0A000001, 0x0A000101,
                                   packet::IpProto::kTcp, std::move(segment));
    per_packet(encoder.process(*pkt));
  }
}

}  // namespace

RedundancyReport redundancy_percent(util::BytesView object,
                                    std::size_t window_packets,
                                    const core::DreParams& dre,
                                    std::size_t mss) {
  // Bound the cache to ~window_packets packets via the byte budget.
  cache::CacheConfig cache;
  cache.l1_bytes = window_packets * (mss + packet::TcpHeader::kSize + 20);
  core::Encoder encoder(dre, std::make_unique<core::NaivePolicy>(), cache);
  std::uint64_t encoded = 0;
  encode_object(object, mss, encoder, [&](const core::EncodeInfo& info) {
    if (info.encoded) ++encoded;
  });
  const auto& s = encoder.stats();
  RedundancyReport r;
  if (s.bytes_in > 0) {
    r.percent_saved =
        100.0 * static_cast<double>(s.bytes_saved()) / s.bytes_in;
  }
  if (s.data_packets > 0) {
    r.percent_encoded = 100.0 * static_cast<double>(encoded) / s.data_packets;
  }
  return r;
}

DependencyReport avg_dependencies(util::BytesView object,
                                  const core::DreParams& dre,
                                  std::size_t mss) {
  core::Encoder encoder(dre, std::make_unique<core::NaivePolicy>());
  std::uint64_t encoded = 0;
  std::uint64_t dep_sum = 0;
  std::size_t dep_max = 0;
  std::uint64_t region_sum = 0;
  encode_object(object, mss, encoder, [&](const core::EncodeInfo& info) {
    if (!info.encoded) return;
    ++encoded;
    dep_sum += info.deps.size();
    dep_max = std::max(dep_max, info.deps.size());
    region_sum += info.regions;
  });
  DependencyReport r;
  if (encoded > 0) {
    r.avg_distinct_deps = static_cast<double>(dep_sum) / encoded;
    r.avg_regions = static_cast<double>(region_sum) / encoded;
    r.max_distinct_deps = static_cast<double>(dep_max);
  }
  const auto& s = encoder.stats();
  if (s.bytes_in > 0) {
    r.percent_saved =
        100.0 * static_cast<double>(s.bytes_saved()) / s.bytes_in;
  }
  return r;
}

}  // namespace bytecache::workload
